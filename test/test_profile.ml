(* The build introspection layer: the persistent profile store, the
   driver's rebuild-cause attribution, and the scheduler occupancy
   stats that feed [irm explain] / [irm profile]. *)

module Profile = Obs.Profile
module Driver = Irm.Driver

let mk_unit ?(outcome = "recompiled") ?cause ?(culprits = []) ?(wall = 0.1)
    ?(phases = []) ?(priority = 0.) name =
  {
    Profile.up_unit = name;
    up_outcome = outcome;
    up_cause = cause;
    up_culprits = culprits;
    up_start_s = 0.;
    up_wall_s = wall;
    up_phases = phases;
    up_imports = [];
    up_priority = priority;
  }

let mk_build ?(id = 1) ?(policy = "cutoff") ?(wall = 1.0) ?(jobs = 1)
    ?(busy = [ 0.5 ]) ?(schedule = "wavefront") ?(static_releases = 0) units =
  {
    Profile.bp_id = id;
    bp_policy = policy;
    bp_backend = "serial";
    bp_wall_s = wall;
    bp_jobs = jobs;
    bp_slot_busy_s = busy;
    bp_schedule = schedule;
    bp_static_releases = static_releases;
    bp_units = units;
  }

(* ------------------------------------------------------------------ *)
(* The store                                                           *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip () =
  let fs = Vfs.memory () in
  let p = Profile.load fs in
  Alcotest.(check int) "fresh store: next id 1" 1 (Profile.next_id p);
  Profile.record p (mk_build ~id:1 [ mk_unit ~wall:0.2 "a.sml" ]);
  Profile.record p
    (mk_build ~id:2
       [ mk_unit ~wall:0.4 "a.sml"; mk_unit ~outcome:"loaded" "b.sml" ]);
  let p' = Profile.load fs in
  Alcotest.(check int) "two builds retained" 2 (List.length (Profile.builds p'));
  Alcotest.(check int) "next id advances" 3 (Profile.next_id p');
  (match Profile.last p' with
  | Some b -> Alcotest.(check int) "last build is newest" 2 b.Profile.bp_id
  | None -> Alcotest.fail "no last build after reload");
  Alcotest.(check bool) "a.sml known" true (Profile.known p' "a.sml");
  Alcotest.(check bool) "b.sml known (loaded counts)" true
    (Profile.known p' "b.sml");
  Alcotest.(check bool) "unseen unit unknown" false (Profile.known p' "z.sml");
  Alcotest.(check bool) "store has bytes on disk" true
    (Profile.store_bytes p' > 0)

let test_ewma_and_max () =
  let fs = Vfs.memory () in
  let p = Profile.load fs in
  Profile.record p
    (mk_build ~id:1 [ mk_unit ~wall:1.0 ~phases:[ ("parse", 0.5) ] "a.sml" ]);
  (match Profile.aggregate p "a.sml" with
  | Some a ->
    Alcotest.(check (float 1e-9)) "first compile seeds the ewma" 1.0
      a.Profile.ag_ewma_s
  | None -> Alcotest.fail "no aggregate after first compile");
  Profile.record p
    (mk_build ~id:2
       [
         mk_unit ~wall:2.0
           ~phases:[ ("parse", 1.5); ("elaborate", 0.25) ]
           "a.sml";
       ]);
  match Profile.aggregate p "a.sml" with
  | None -> Alcotest.fail "no aggregate after second compile"
  | Some a ->
    Alcotest.(check int) "two compiles aggregated" 2 a.Profile.ag_builds;
    (* alpha = 0.3: 0.7 * 1.0 + 0.3 * 2.0 *)
    Alcotest.(check (float 1e-9)) "ewma rolls" 1.3 a.Profile.ag_ewma_s;
    Alcotest.(check (float 1e-9)) "max tracks the peak" 2.0 a.Profile.ag_max_s;
    Alcotest.(check (float 1e-9)) "last is the newest" 2.0 a.Profile.ag_last_s;
    Alcotest.(check (float 1e-9))
      "phase ewma rolls" 0.8
      (List.assoc "parse" a.Profile.ag_phases);
    Alcotest.(check (float 1e-9))
      "new phase enters at face value" 0.25
      (List.assoc "elaborate" a.Profile.ag_phases)

(* loads and cache hits say nothing about compile time *)
let test_aggregate_only_fed_by_compiles () =
  let fs = Vfs.memory () in
  let p = Profile.load fs in
  Profile.record p (mk_build ~id:1 [ mk_unit ~outcome:"loaded" "a.sml" ]);
  Alcotest.(check bool) "loaded does not aggregate" true
    (Profile.aggregate p "a.sml" = None);
  Profile.record p (mk_build ~id:2 [ mk_unit ~outcome:"cutoff" "a.sml" ]);
  Alcotest.(check bool) "cutoff does aggregate" true
    (Profile.aggregate p "a.sml" <> None)

let test_damaged_store_degrades () =
  let fs = Vfs.memory () in
  let p = Profile.load fs in
  Profile.record p (mk_build ~id:1 [ mk_unit "a.sml" ]);
  (* a valid journal record followed by a torn one: the valid prefix
     survives, the tail is dropped *)
  let jpath = Filename.concat Profile.default_dir "journal" in
  (match fs.Vfs.fs_read jpath with
  | Some j -> fs.Vfs.fs_write jpath (j ^ "deadbeef {\"torn\":")
  | None -> Alcotest.fail "journal missing after record");
  let p' = Profile.load fs in
  Alcotest.(check int) "valid prefix survives a torn journal" 1
    (List.length (Profile.builds p'));
  (* a corrupt snapshot is an empty store, never an error *)
  let spath = Filename.concat Profile.default_dir "store" in
  fs.Vfs.fs_write spath "not a snapshot at all";
  fs.Vfs.fs_remove jpath;
  let p'' = Profile.load fs in
  Alcotest.(check int) "corrupt snapshot loads as empty" 0
    (List.length (Profile.builds p''));
  Alcotest.(check bool) "and records fine afterwards" true
    (Profile.record p'' (mk_build ~id:1 [ mk_unit "a.sml" ]);
     List.length (Profile.builds (Profile.load fs)) = 1)

let test_history_is_bounded () =
  let fs = Vfs.memory () in
  let p = Profile.load fs in
  for i = 1 to 40 do
    Profile.record p (mk_build ~id:i [ mk_unit ~wall:(float_of_int i) "a.sml" ])
  done;
  let p' = Profile.load fs in
  let builds = Profile.builds p' in
  Alcotest.(check bool) "history bounded" true (List.length builds <= 16);
  (match Profile.last p' with
  | Some b -> Alcotest.(check int) "newest retained" 40 b.Profile.bp_id
  | None -> Alcotest.fail "no last build");
  match Profile.aggregate p' "a.sml" with
  | Some a ->
    Alcotest.(check int)
      "aggregate outlives the evicted history" 40 a.Profile.ag_builds
  | None -> Alcotest.fail "aggregate lost"

let test_critical_path_and_efficiency () =
  let a = mk_unit ~wall:0.3 "a.sml" in
  let b =
    { (mk_unit ~wall:0.5 "b.sml") with Profile.up_imports = [ ("a.sml", "") ] }
  in
  let c =
    { (mk_unit ~wall:0.1 "c.sml") with Profile.up_imports = [ ("a.sml", "") ] }
  in
  let build = mk_build ~wall:1.0 ~jobs:2 ~busy:[ 0.6; 0.2 ] [ a; b; c ] in
  Alcotest.(check (list string))
    "critical path is the heaviest chain, dependency first"
    [ "a.sml"; "b.sml" ]
    (List.map (fun u -> u.Profile.up_unit) (Profile.critical_path build));
  (match Profile.efficiency build with
  | Some e -> Alcotest.(check (float 1e-9)) "busy over jobs*wall" 0.4 e
  | None -> Alcotest.fail "efficiency missing");
  Alcotest.(check bool) "zero-wall build has no efficiency" true
    (Profile.efficiency (mk_build ~wall:0. [ a ]) = None)

(* ------------------------------------------------------------------ *)
(* Driver attribution                                                  *)
(* ------------------------------------------------------------------ *)

let write_chain fs =
  fs.Vfs.fs_write "base.sml"
    "structure Base = struct val origin = 10 fun scale n = n * origin end";
  fs.Vfs.fs_write "mid.sml" "structure Mid = struct val v = Base.scale 2 end";
  fs.Vfs.fs_write "top.sml"
    "structure Top = struct val result = Mid.v + Base.origin end";
  [ "base.sml"; "mid.sml"; "top.sml" ]

let causes_of stats =
  List.map
    (fun (f, c) -> (f, Driver.cause_name c, Driver.cause_culprits c))
    stats.Driver.st_causes

let test_first_build_causes () =
  let fs = Vfs.memory () in
  let mgr = Driver.create fs in
  let sources = write_chain fs in
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  Alcotest.(check (list (triple string string (list string))))
    "every unit is a first build"
    [
      ("base.sml", "first-build", []);
      ("mid.sml", "first-build", []);
      ("top.sml", "first-build", []);
    ]
    (causes_of stats)

let test_comment_edit_attribution () =
  let fs = Vfs.memory () in
  let mgr = Driver.create fs in
  let sources = write_chain fs in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  fs.Vfs.fs_write "base.sml"
    "structure Base = struct val origin = 10 fun scale n = n * origin end (* touched *)";
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  Alcotest.(check (list (triple string string (list string))))
    "under cutoff only the edited unit is stale"
    [ ("base.sml", "source-changed", []) ]
    (causes_of stats);
  Alcotest.(check string) "and it was a cutoff hit" "cutoff"
    (Driver.outcome_of stats "base.sml")

let test_interface_edit_culprits () =
  let fs = Vfs.memory () in
  let mgr = Driver.create fs in
  (* a diamond: both mids import base, top imports both mids *)
  fs.Vfs.fs_write "base.sml" "structure Base = struct val origin = 10 end";
  fs.Vfs.fs_write "mid1.sml" "structure Mid1 = struct val a = Base.origin end";
  fs.Vfs.fs_write "mid2.sml"
    "structure Mid2 = struct val b = Base.origin + 1 end";
  fs.Vfs.fs_write "top.sml"
    "structure Top = struct val r = Mid1.a + Mid2.b end";
  let sources = [ "base.sml"; "mid1.sml"; "mid2.sml"; "top.sml" ] in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  (* a new export changes base's interface pid; the mids' own
     interfaces stay the same, so the cascade stops there *)
  fs.Vfs.fs_write "base.sml"
    "structure Base = struct val origin = 10 val extra = 1 end";
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  Alcotest.(check (list (triple string string (list string))))
    "direct importers blame base, top is untouched"
    [
      ("base.sml", "source-changed", []);
      ("mid1.sml", "import-pid-changed", [ "base.sml" ]);
      ("mid2.sml", "import-pid-changed", [ "base.sml" ]);
    ]
    (causes_of stats);
  Alcotest.(check string) "top stays loaded" "loaded"
    (Driver.outcome_of stats "top.sml")

let test_timestamp_cascade_forced () =
  let fs = Vfs.memory () in
  let mgr = Driver.create fs in
  let sources = write_chain fs in
  let _ = Driver.build mgr ~policy:Driver.Timestamp ~sources in
  Vfs.touch fs "base.sml";
  let stats = Driver.build mgr ~policy:Driver.Timestamp ~sources in
  Alcotest.(check (list (triple string string (list string))))
    "the whole cone recompiles; dependents are forced, not blamed"
    [
      ("base.sml", "source-changed", []);
      ("mid.sml", "forced", [ "base.sml" ]);
      ("top.sml", "forced", [ "base.sml"; "mid.sml" ]);
    ]
    (causes_of stats);
  List.iter
    (fun (f, c) ->
      if f <> "base.sml" then
        Alcotest.(check (option string))
          (f ^ " forced reason") (Some "timestamp-cascade")
          (Driver.cause_detail c))
    stats.Driver.st_causes

let test_evicted_vs_first_build () =
  let fs = Vfs.memory () in
  let profile = Profile.load fs in
  let mgr = Driver.create fs in
  let sources = write_chain fs in
  let _ = Driver.build ~profile mgr ~policy:Driver.Cutoff ~sources in
  fs.Vfs.fs_remove "mid.sml.bin";
  let stats = Driver.build ~profile mgr ~policy:Driver.Cutoff ~sources in
  Alcotest.(check (list (triple string string (list string))))
    "a deleted bin of a known unit is evicted, not first-build"
    [ ("mid.sml", "evicted", []) ]
    (causes_of stats);
  (* without a store there is no memory of the unit *)
  let fs2 = Vfs.memory () in
  let mgr2 = Driver.create fs2 in
  let sources2 = write_chain fs2 in
  let _ = Driver.build mgr2 ~policy:Driver.Cutoff ~sources:sources2 in
  fs2.Vfs.fs_remove "mid.sml.bin";
  let stats2 = Driver.build mgr2 ~policy:Driver.Cutoff ~sources:sources2 in
  Alcotest.(check (list (triple string string (list string))))
    "profile-less rebuild can only call it a first build"
    [ ("mid.sml", "first-build", []) ]
    (causes_of stats2)

let test_corrupt_entry_cause () =
  let fs = Vfs.memory () in
  let mgr = Driver.create fs in
  let sources = write_chain fs in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  fs.Vfs.fs_write "mid.sml.bin" "garbage, not a bin file";
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  Alcotest.(check (list (triple string string (list string))))
    "a bin that fails to rehydrate is corrupt-entry"
    [ ("mid.sml", "corrupt-entry", []) ]
    (causes_of stats)

let test_slot_stats () =
  let fs = Vfs.memory () in
  let mgr = Driver.create fs in
  let sources = write_chain fs in
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  Alcotest.(check int) "serial build uses one slot" 1 stats.Driver.st_jobs;
  Alcotest.(check int) "one busy figure per slot" 1
    (List.length stats.Driver.st_slot_busy_s);
  List.iter
    (fun b ->
      Alcotest.(check bool) "busy time is non-negative" true (b >= 0.);
      Alcotest.(check bool) "busy time is bounded by wall" true
        (b <= stats.Driver.st_wall_s +. 0.001))
    stats.Driver.st_slot_busy_s;
  Alcotest.(check bool) "build ids are distinct" true
    (stats.Driver.st_build_id
    <> (Driver.build mgr ~policy:Driver.Cutoff ~sources).Driver.st_build_id)

let test_driver_records_profile () =
  let fs = Vfs.memory () in
  let profile = Profile.load fs in
  let mgr = Driver.create fs in
  let sources = write_chain fs in
  let stats = Driver.build ~profile mgr ~policy:Driver.Cutoff ~sources in
  let b =
    match Profile.last (Profile.load fs) with
    | Some b -> b
    | None -> Alcotest.fail "build not recorded"
  in
  Alcotest.(check int) "stats and store agree on the id"
    stats.Driver.st_build_id b.Profile.bp_id;
  Alcotest.(check string) "policy recorded" "cutoff" b.Profile.bp_policy;
  Alcotest.(check (list string))
    "units in build order" stats.Driver.st_order
    (List.map (fun u -> u.Profile.up_unit) b.Profile.bp_units);
  let top = List.nth b.Profile.bp_units 2 in
  Alcotest.(check (option string))
    "cause recorded" (Some "first-build") top.Profile.up_cause;
  Alcotest.(check bool) "phase durations recorded" true
    (List.mem_assoc "parse" top.Profile.up_phases
    && List.mem_assoc "elaborate" top.Profile.up_phases);
  Alcotest.(check (list string))
    "imports recorded with pids"
    [ "base.sml"; "mid.sml" ]
    (List.map fst top.Profile.up_imports |> List.sort String.compare);
  List.iter
    (fun (_, pid) ->
      Alcotest.(check bool) "import pid is hex" true (String.length pid = 32))
    top.Profile.up_imports

let test_schedule_recorded_and_degrades () =
  (* a critical-path build stamps the profile with its schedule, the
     per-unit priorities it ranked by, and the early static releases;
     on a cold store the chain base <- mid <- top gets the 1s-per-unit
     default estimate, so the priorities are exactly the chain depths *)
  let fs = Vfs.memory () in
  let profile = Profile.load fs in
  let mgr = Driver.create fs in
  let sources = write_chain fs in
  let stats =
    Driver.build ~profile ~backend:(Driver.Parallel 2)
      ~schedule:Driver.Critical_path mgr ~policy:Driver.Cutoff ~sources
  in
  Alcotest.(check string) "stats carry the schedule" "critical-path"
    (Driver.schedule_name stats.Driver.st_schedule);
  Alcotest.(check int) "every compiled unit released its static view" 3
    stats.Driver.st_static_releases;
  let b =
    match Profile.last profile with
    | Some b -> b
    | None -> Alcotest.fail "build not recorded"
  in
  Alcotest.(check string) "schedule recorded" "critical-path"
    b.Profile.bp_schedule;
  Alcotest.(check int) "static releases recorded" 3
    b.Profile.bp_static_releases;
  let prio build name =
    match Profile.find_unit build name with
    | Some u -> u.Profile.up_priority
    | None -> Alcotest.fail (name ^ " missing from the profile")
  in
  List.iter
    (fun (name, expected) ->
      Alcotest.(check (float 1e-9))
        ("cold chain priority of " ^ name)
        expected (prio b name))
    [ ("base.sml", 3.0); ("mid.sml", 2.0); ("top.sml", 1.0) ];
  (* a vandalised store never stops the schedule: estimates fall back
     to the cold default and the rebuild succeeds as usual *)
  fs.Vfs.fs_write (Filename.concat Profile.default_dir "store") "garbage";
  fs.Vfs.fs_remove (Filename.concat Profile.default_dir "journal");
  let profile' = Profile.load fs in
  Alcotest.(check int) "store is gone" 0 (List.length (Profile.builds profile'));
  List.iter (fun f -> fs.Vfs.fs_remove (f ^ ".bin")) sources;
  let mgr' = Driver.create fs in
  let stats' =
    Driver.build ~profile:profile' ~backend:(Driver.Parallel 2)
      ~schedule:Driver.Critical_path mgr' ~policy:Driver.Cutoff ~sources
  in
  Alcotest.(check int) "damaged store: full rebuild still runs" 3
    (List.length stats'.Driver.st_recompiled);
  (match Profile.last profile' with
  | Some b' ->
    Alcotest.(check (float 1e-9))
      "damaged store: priorities degrade to depth" 3.0 (prio b' "base.sml")
  | None -> Alcotest.fail "rebuild not recorded");
  (* and the wavefront records the neutral stamp: no priorities, no
     early releases *)
  List.iter (fun f -> fs.Vfs.fs_remove (f ^ ".bin")) sources;
  let mgr'' = Driver.create fs in
  let stats'' =
    Driver.build ~profile:profile' ~backend:(Driver.Parallel 2)
      ~schedule:Driver.Wavefront mgr'' ~policy:Driver.Cutoff ~sources
  in
  Alcotest.(check string) "wavefront stamped" "wavefront"
    (Driver.schedule_name stats''.Driver.st_schedule);
  Alcotest.(check int) "wavefront: no static releases" 0
    stats''.Driver.st_static_releases;
  match Profile.last profile' with
  | Some b'' ->
    List.iter
      (fun name ->
        Alcotest.(check (float 1e-9))
          ("wavefront priority of " ^ name)
          0. (prio b'' name))
      sources
  | None -> Alcotest.fail "wavefront build not recorded"

let test_skipped_culprit_recorded () =
  let fs = Vfs.memory () in
  let profile = Profile.load fs in
  let mgr = Driver.create fs in
  fs.Vfs.fs_write "base.sml" "structure Base = struct val x = nope end";
  fs.Vfs.fs_write "top.sml" "structure Top = struct val y = Base.x end";
  let sources = [ "base.sml"; "top.sml" ] in
  let stats =
    Driver.build ~profile ~keep_going:true mgr ~policy:Driver.Cutoff ~sources
  in
  Alcotest.(check (list (pair string string)))
    "top skipped, blaming base"
    [ ("top.sml", "base.sml") ]
    stats.Driver.st_skipped;
  let b =
    match Profile.last profile with
    | Some b -> b
    | None -> Alcotest.fail "build not recorded"
  in
  match Profile.find_unit b "top.sml" with
  | Some u ->
    Alcotest.(check string) "outcome skipped" "skipped" u.Profile.up_outcome;
    Alcotest.(check (list string))
      "culprit is the failed root" [ "base.sml" ] u.Profile.up_culprits
  | None -> Alcotest.fail "skipped unit not in the profile"

(* ------------------------------------------------------------------ *)
(* Attribution exactness on random DAGs                                *)
(* ------------------------------------------------------------------ *)

(* a random DAG over units u0..u(n-1): unit i may reference any earlier
   unit; sources are derived from the edge list, so the scanner
   reconstructs exactly this DAG *)
let dag_gen =
  QCheck.Gen.(
    sized_size (int_range 3 7) (fun n ->
        let* edges =
          flatten_l
            (List.init n (fun i ->
                 let* deps =
                   flatten_l
                     (List.init i (fun j ->
                          let* b = bool in
                          return (if b then Some j else None)))
                 in
                 return (List.filter_map Fun.id deps)))
        in
        let* edited = int_range 0 (n - 1) in
        return (n, edges, edited)))

let dag_arb =
  QCheck.make dag_gen ~print:(fun (n, edges, edited) ->
      Printf.sprintf "n=%d edited=%d edges=%s" n edited
        (String.concat ";"
           (List.mapi
              (fun i ds ->
                Printf.sprintf "%d<-[%s]" i
                  (String.concat "," (List.map string_of_int ds)))
              edges)))

let unit_file i = Printf.sprintf "u%d.sml" i

let dag_source ?(iface_extra = false) ?(comment = false) i deps =
  let refs =
    match deps with
    | [] -> "1"
    | deps ->
      String.concat " + " (List.map (fun j -> Printf.sprintf "U%d.x" j) deps)
  in
  Printf.sprintf "structure U%d = struct val x = %s + %d %s end %s" i refs i
    (if iface_extra then "val y = 0" else "")
    (if comment then "(* touched *)" else "")

let write_dag fs edges =
  List.iteri (fun i deps -> fs.Vfs.fs_write (unit_file i) (dag_source i deps))
    edges

(* rewrite only the edited unit: the memory fs's logical clock treats
   every write as a touch, even a byte-identical one *)
let edit_dag fs edges ~edited ~iface_extra ~comment =
  let deps = List.nth edges edited in
  fs.Vfs.fs_write (unit_file edited)
    (dag_source ~iface_extra ~comment edited deps)

let prop_comment_edit_exact =
  QCheck.Test.make ~name:"comment edit: only the edited unit is stale"
    ~count:30 dag_arb (fun (n, edges, edited) ->
      ignore n;
      let fs = Vfs.memory () in
      let mgr = Driver.create fs in
      let sources = List.mapi (fun i _ -> unit_file i) edges in
      write_dag fs edges;
      let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
      edit_dag fs edges ~edited ~iface_extra:false ~comment:true;
      let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources in
      causes_of stats = [ (unit_file edited, "source-changed", []) ])

let prop_interface_edit_exact =
  QCheck.Test.make
    ~name:"interface edit: direct importers blame exactly the edited unit"
    ~count:30 dag_arb (fun (n, edges, edited) ->
      ignore n;
      let fs = Vfs.memory () in
      let mgr = Driver.create fs in
      let sources = List.mapi (fun i _ -> unit_file i) edges in
      write_dag fs edges;
      let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
      edit_dag fs edges ~edited ~iface_extra:true ~comment:false;
      let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources in
      let want =
        List.mapi (fun i deps -> (i, deps)) edges
        |> List.filter_map (fun (i, deps) ->
               if i = edited then
                 Some (unit_file i, "source-changed", [])
               else if List.mem edited deps then
                 Some (unit_file i, "import-pid-changed", [ unit_file edited ])
               else None)
      in
      causes_of stats = want)

(* ------------------------------------------------------------------ *)
(* Metrics dump determinism                                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_pp_deterministic () =
  Obs.Metrics.reset ();
  Obs.Metrics.add (Obs.Metrics.counter "zdet.b") 2;
  Obs.Metrics.add (Obs.Metrics.counter "zdet.a") 1;
  let once = Format.asprintf "%a" Obs.Metrics.pp () in
  let twice = Format.asprintf "%a" Obs.Metrics.pp () in
  Alcotest.(check string) "same registry, same dump" once twice;
  let ia =
    match String.index_opt once 'z' with Some i -> i | None -> -1
  in
  Alcotest.(check bool) "counters present" true (ia >= 0);
  (* names are sorted, so zdet.a renders before zdet.b *)
  let find s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = if i + m > n then -1
      else if String.sub s i m = sub then i else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "dump is name-sorted" true
    (find once "zdet.a" < find once "zdet.b")

let suite =
  [
    Alcotest.test_case "store round-trips through snapshot+journal" `Quick
      test_store_roundtrip;
    Alcotest.test_case "ewma and max roll correctly" `Quick test_ewma_and_max;
    Alcotest.test_case "only compiles feed the aggregate" `Quick
      test_aggregate_only_fed_by_compiles;
    Alcotest.test_case "damaged store degrades to a prefix" `Quick
      test_damaged_store_degrades;
    Alcotest.test_case "history is bounded, aggregates are not" `Quick
      test_history_is_bounded;
    Alcotest.test_case "critical path and efficiency" `Quick
      test_critical_path_and_efficiency;
    Alcotest.test_case "first build causes" `Quick test_first_build_causes;
    Alcotest.test_case "comment edit attribution" `Quick
      test_comment_edit_attribution;
    Alcotest.test_case "interface edit culprits" `Quick
      test_interface_edit_culprits;
    Alcotest.test_case "timestamp cascade is forced" `Quick
      test_timestamp_cascade_forced;
    Alcotest.test_case "evicted vs first-build" `Quick
      test_evicted_vs_first_build;
    Alcotest.test_case "corrupt entry cause" `Quick test_corrupt_entry_cause;
    Alcotest.test_case "slot stats" `Quick test_slot_stats;
    Alcotest.test_case "driver records the profile" `Quick
      test_driver_records_profile;
    Alcotest.test_case "schedule recorded, damaged store degrades" `Quick
      test_schedule_recorded_and_degrades;
    Alcotest.test_case "skipped culprit recorded" `Quick
      test_skipped_culprit_recorded;
    QCheck_alcotest.to_alcotest prop_comment_edit_exact;
    QCheck_alcotest.to_alcotest prop_interface_edit_exact;
    Alcotest.test_case "metrics dump is deterministic" `Quick
      test_metrics_pp_deterministic;
  ]
