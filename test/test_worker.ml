(* Supervised out-of-process compile workers: frame integrity, the
   supervisor's crash/timeout/wedge handling, quarantine accounting,
   pool death, and the acceptance property — under chaos injection the
   Workers backend stays byte-identical to Serial for every unit it
   completes, poisons exactly the chaos units' cones, and a chaos-free
   rerun recompiles exactly failed ∪ skipped and converges clean. *)

module Driver = Irm.Driver
module Wire = Irm.Wire
module Gen = Workload.Gen
module Diag = Support.Diag
module Frame = Pickle.Frame

let sorted = List.sort String.compare
let check_files = Alcotest.(check (list string))
let failed_names stats = List.map fst stats.Driver.st_failed
let skipped_names stats = List.map fst stats.Driver.st_skipped

let metric name = Option.value ~default:0 (Obs.Metrics.find name)

(* tight timings so supervision paths run in test time; chaos is
   injected through the config, not the environment *)
let wcfg ?(jobs = 2) ?(timeout = 30.) ?(chaos = []) () =
  {
    (Worker.default_config ~jobs ()) with
    Worker.w_timeout_s = timeout;
    w_heartbeat_s = 0.05;
    w_backoff_s = 0.001;
    w_backoff_cap_s = 0.05;
    w_chaos = chaos;
  }

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let frame = Frame.encode ~kind:3 ~id:"u001.sml" ~payload:"the bytes \x00\xff" in
  let header = String.sub frame 0 Frame.header_size in
  let body = String.sub frame Frame.header_size (Frame.body_length header) in
  Alcotest.(check int)
    "frame is header + body" (String.length frame)
    (Frame.header_size + String.length body);
  let msg = Frame.decode_body body in
  Alcotest.(check int) "kind" 3 msg.Frame.f_kind;
  Alcotest.(check string) "id" "u001.sml" msg.Frame.f_id;
  Alcotest.(check string) "payload" "the bytes \x00\xff" msg.Frame.f_payload

let expect_corrupt name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Buf.Corrupt" name
  | exception Pickle.Buf.Corrupt _ -> ()

let test_frame_corruption () =
  let frame = Frame.encode ~kind:2 ~id:"u" ~payload:"payload" in
  let header = String.sub frame 0 Frame.header_size in
  let body_len = Frame.body_length header in
  let body = String.sub frame Frame.header_size body_len in
  (* flip one byte anywhere in the body: the CRC trailer must catch it *)
  for i = 0 to body_len - 1 do
    let b = Bytes.of_string body in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    expect_corrupt
      (Printf.sprintf "bit flip at %d" i)
      (fun () -> Frame.decode_body (Bytes.to_string b))
  done;
  expect_corrupt "bad magic" (fun () ->
      Frame.body_length ("XXXX" ^ String.sub header 4 4));
  expect_corrupt "truncated body" (fun () ->
      Frame.decode_body (String.sub body 0 3))

(* ------------------------------------------------------------------ *)
(* Wire codecs                                                         *)
(* ------------------------------------------------------------------ *)

let test_wire_exn_roundtrip () =
  let d =
    Diag.make ~code:"E0302" ~unit_name:"u.sml" Diag.Elaborate
      (Support.Loc.make "u.sml"
         { Support.Loc.line = 3; col = 7; offset = 40 }
         { Support.Loc.line = 3; col = 12; offset = 45 })
      "unbound variable x"
  in
  (match Wire.decode_exn (Wire.encode_exn (Diag.Error d)) with
  | Diag.Error d' ->
    Alcotest.(check string) "same rendering" (Diag.to_string d)
      (Diag.to_string d')
  | _ -> Alcotest.fail "expected Diag.Error");
  (* dummy locations survive the trip *physically*: Diag.pp picks the
     unit-name rendering by [loc == Loc.dummy] *)
  let dummy = Diag.make ~unit_name:"u.sml" Diag.Manager Support.Loc.dummy "m" in
  (match Wire.decode_exn (Wire.encode_exn (Diag.Errors [ dummy ])) with
  | Diag.Errors [ d' ] ->
    Alcotest.(check bool) "physical dummy" true (d'.Diag.loc == Support.Loc.dummy);
    Alcotest.(check string) "same rendering" (Diag.to_string dummy)
      (Diag.to_string d')
  | _ -> Alcotest.fail "expected Diag.Errors");
  (* a non-diagnostic exception renders as its bare message, exactly as
     the in-process exception would have *)
  match Wire.decode_exn (Wire.encode_exn Stack_overflow) with
  | e ->
    Alcotest.(check string) "bare message" (Printexc.to_string Stack_overflow)
      (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Pool basics, over a toy protocol                                    *)
(* ------------------------------------------------------------------ *)

exception Toy_failure of string

let toy_proto () =
  {
    Worker.p_handler =
      (fun ~notify:_ ~id payload ->
        if String.length payload > 0 && payload.[0] = '!' then
          failwith ("handler refused " ^ id)
        else id ^ ":" ^ String.uppercase_ascii payload);
    p_encode_exn = Printexc.to_string;
    p_decode_exn = (fun s -> Toy_failure s);
    p_fail =
      (fun ~id -> function
        | Worker.Crashed { wf_attempts; _ } ->
          Toy_failure (Printf.sprintf "%s crashed x%d" id wf_attempts)
        | Worker.Timed_out { wf_timeout_s } ->
          Toy_failure (Printf.sprintf "%s timed out after %gs" id wf_timeout_s));
  }

let drain pool =
  let results = ref [] in
  while Worker.pending pool > 0 do
    results := Worker.next pool :: !results
  done;
  List.rev !results

let test_pool_echo () =
  let pool = Worker.create (wcfg ()) (toy_proto ()) in
  Fun.protect ~finally:(fun () -> Worker.shutdown pool) @@ fun () ->
  let ids = List.init 10 (Printf.sprintf "job%02d") in
  List.iter (fun id -> Worker.submit pool ~id ("payload of " ^ id)) ids;
  let results = drain pool in
  Alcotest.(check int) "all answered" 10 (List.length results);
  List.iter
    (fun id ->
      match List.assoc id results with
      | Ok reply ->
        Alcotest.(check string) "echoed"
          (id ^ ":" ^ String.uppercase_ascii ("payload of " ^ id))
          reply
      | Error e -> Alcotest.failf "%s failed: %s" id (Printexc.to_string e))
    ids

let test_pool_handler_error () =
  let pool = Worker.create (wcfg ()) (toy_proto ()) in
  Fun.protect ~finally:(fun () -> Worker.shutdown pool) @@ fun () ->
  Worker.submit pool ~id:"good" "fine";
  Worker.submit pool ~id:"bad" "!boom";
  let results = drain pool in
  (match List.assoc "bad" results with
  | Error (Toy_failure msg) ->
    Alcotest.(check string) "handler error crossed the pipe"
      "Failure(\"handler refused bad\")" msg
  | _ -> Alcotest.fail "expected a decoded handler error");
  match List.assoc "good" results with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "good failed: %s" (Printexc.to_string e)

let test_pool_crash_quarantine () =
  let crashes0 = metric "worker.crashes" in
  let quarantined0 = metric "worker.quarantined" in
  let pool =
    Worker.create (wcfg ~chaos:[ ("victim", Worker.Chaos_crash) ] ())
      (toy_proto ())
  in
  Fun.protect ~finally:(fun () -> Worker.shutdown pool) @@ fun () ->
  Worker.submit pool ~id:"victim" "x";
  Worker.submit pool ~id:"bystander" "y";
  let results = drain pool in
  (match List.assoc "victim" results with
  | Error (Toy_failure msg) ->
    Alcotest.(check string) "quarantined after 2 attempts" "victim crashed x2"
      msg
  | _ -> Alcotest.fail "expected quarantine");
  (match List.assoc "bystander" results with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "bystander failed: %s" (Printexc.to_string e));
  Alcotest.(check int) "two crashes accounted" 2
    (metric "worker.crashes" - crashes0);
  Alcotest.(check int) "one quarantine" 1
    (metric "worker.quarantined" - quarantined0)

let test_pool_exit_is_crash () =
  let pool =
    Worker.create
      (wcfg ~chaos:[ ("victim", Worker.Chaos_exit 3) ] ())
      (toy_proto ())
  in
  Fun.protect ~finally:(fun () -> Worker.shutdown pool) @@ fun () ->
  Worker.submit pool ~id:"victim" "x";
  match drain pool with
  | [ ("victim", Error (Toy_failure msg)) ]
    when msg = "victim crashed x2" -> ()
  | other ->
    Alcotest.failf "expected quarantine, got %d results" (List.length other)

let test_pool_timeout () =
  let timeouts0 = metric "worker.timeouts" in
  let pool =
    Worker.create
      (wcfg ~timeout:0.3 ~chaos:[ ("sleeper", Worker.Chaos_hang) ] ())
      (toy_proto ())
  in
  Fun.protect ~finally:(fun () -> Worker.shutdown pool) @@ fun () ->
  Worker.submit pool ~id:"sleeper" "x";
  (match drain pool with
  | [ ("sleeper", Error (Toy_failure msg)) ] ->
    Alcotest.(check string) "timed out" "sleeper timed out after 0.3s" msg
  | _ -> Alcotest.fail "expected a timeout failure");
  Alcotest.(check int) "timeout accounted once" 1
    (metric "worker.timeouts" - timeouts0)

let test_pool_wedge_heartbeat_loss () =
  (* heartbeats stop but the job deadline is far away: only heartbeat
     supervision can catch this, and it counts as a crash *)
  let pool =
    Worker.create
      (wcfg ~timeout:60. ~chaos:[ ("wedged", Worker.Chaos_wedge) ] ())
      (toy_proto ())
  in
  Fun.protect ~finally:(fun () -> Worker.shutdown pool) @@ fun () ->
  Worker.submit pool ~id:"wedged" "x";
  match drain pool with
  | [ ("wedged", Error (Toy_failure msg)) ] when msg = "wedged crashed x2" ->
    ()
  | _ -> Alcotest.fail "expected heartbeat-loss quarantine"

let test_pool_down () =
  let pool =
    Worker.create (wcfg ~chaos:[ ("*", Worker.Chaos_nostart) ] ())
      (toy_proto ())
  in
  Fun.protect ~finally:(fun () -> Worker.shutdown pool) @@ fun () ->
  Worker.submit pool ~id:"any" "x";
  match drain pool with
  | _ -> Alcotest.fail "expected Pool_down"
  | exception Worker.Pool_down _ -> ()

let test_chaos_of_env () =
  Unix.putenv Worker.chaos_env_var
    "crash:u1.sml, hang:u2.sml,exit=3:u3.sml,wedge:u4.sml,garbage,nostart";
  let parsed = Worker.chaos_of_env () in
  Unix.putenv Worker.chaos_env_var "";
  Alcotest.(check bool) "crash" true
    (List.assoc "u1.sml" parsed = Worker.Chaos_crash);
  Alcotest.(check bool) "hang" true
    (List.assoc "u2.sml" parsed = Worker.Chaos_hang);
  Alcotest.(check bool) "exit" true
    (List.assoc "u3.sml" parsed = Worker.Chaos_exit 3);
  Alcotest.(check bool) "wedge" true
    (List.assoc "u4.sml" parsed = Worker.Chaos_wedge);
  Alcotest.(check bool) "nostart" true
    (List.assoc "*" parsed = Worker.Chaos_nostart);
  Alcotest.(check int) "garbage ignored" 5 (List.length parsed)

(* ------------------------------------------------------------------ *)
(* The Workers scheduler backend on real builds                        *)
(* ------------------------------------------------------------------ *)

let project topology =
  let fs = Vfs.memory () in
  let p = Gen.create fs topology Gen.default_profile in
  (fs, Driver.create fs, Gen.sources p)

let bin_of fs f = Option.get (fs.Vfs.fs_read (f ^ ".bin"))

let break_unbound fs file =
  let src = Option.get (fs.Vfs.fs_read file) in
  let needle = "  val seed = " in
  let n = String.length needle in
  let rec find i =
    if i + n > String.length src then None
    else if String.sub src i n = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "breaker needle missing in %s" file
  | Some i ->
    fs.Vfs.fs_write file
      (String.sub src 0 i ^ needle ^ "wk_unbound_variable + "
      ^ String.sub src (i + n) (String.length src - i - n))

let test_workers_match_serial_clean () =
  List.iter
    (fun seed ->
      let topology = Gen.Random_dag { units = 10; max_deps = 3; seed } in
      let fs_s, mgr_s, sources = project topology in
      let _ = Driver.build mgr_s ~policy:Driver.Cutoff ~sources in
      let fs_w, mgr_w, sources_w = project topology in
      let stats =
        Driver.build ~backend:(Driver.Workers (wcfg ~jobs:3 ())) mgr_w
          ~policy:Driver.Cutoff ~sources:sources_w
      in
      check_files "all recompiled" (sorted sources)
        (sorted stats.Driver.st_recompiled);
      List.iter
        (fun f ->
          Alcotest.(check string)
            (Printf.sprintf "bin bytes of %s (seed %d)" f seed)
            (bin_of fs_s f) (bin_of fs_w f))
        sources)
    [ 11; 42; 77 ]

let test_workers_incremental_noop () =
  let _fs, mgr, sources = project (Gen.Chain 5) in
  let backend = Driver.Workers (wcfg ()) in
  let _ = Driver.build ~backend mgr ~policy:Driver.Cutoff ~sources in
  let stats = Driver.build ~backend mgr ~policy:Driver.Cutoff ~sources in
  check_files "nothing recompiled" [] stats.Driver.st_recompiled;
  Alcotest.(check int) "everything loaded" (List.length sources)
    (List.length stats.Driver.st_loaded)

(* the acceptance property: chaos + a genuinely broken unit under
   keep_going.  Serial (immune to chaos) fixes the expected partitions;
   Workers must agree everywhere chaos does not reach, quarantine the
   crash unit with E0701, time the hung unit out with E0702, skip their
   cones, and a chaos-free rerun must recompile exactly failed ∪
   skipped and converge clean, byte-identical to Serial. *)
let acceptance_for ~seed =
  let topology = Gen.Random_dag { units = 9; max_deps = 3; seed } in
  (* serial reference on an identical broken project *)
  let fs_s, mgr_s, sources = project topology in
  break_unbound fs_s "u002.sml";
  let serial =
    Driver.build ~keep_going:true mgr_s ~policy:Driver.Cutoff ~sources
  in
  (* chaos targets: one crashing, one hanging unit, disjoint from the
     broken one *)
  let crash_unit = "u004.sml" and hang_unit = "u007.sml" in
  let chaos =
    [ (crash_unit, Worker.Chaos_crash); (hang_unit, Worker.Chaos_hang) ]
  in
  let fs_w, mgr_w, _ = project topology in
  break_unbound fs_w "u002.sml";
  let crashes0 = metric "worker.crashes" in
  let workers =
    Driver.build
      ~backend:(Driver.Workers (wcfg ~jobs:3 ~timeout:0.4 ~chaos ()))
      ~keep_going:true mgr_w ~policy:Driver.Cutoff ~sources
  in
  (* the workers run fails exactly serial's failures plus the chaos
     units (unless a chaos unit sits in a failed unit's cone and was
     never attempted) *)
  let serial_failed = sorted (failed_names serial) in
  let workers_failed = sorted (failed_names workers) in
  let serial_skipped = sorted (skipped_names serial) in
  let workers_skipped = sorted (skipped_names workers) in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "serial failure %s also fails under workers" f)
        true
        (List.mem f workers_failed))
    serial_failed;
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "extra workers failure %s is a chaos unit" f)
        true
        (List.mem f [ crash_unit; hang_unit ]))
    (List.filter (fun f -> not (List.mem f serial_failed)) workers_failed);
  (* chaos units that serial completed must have failed with the right
     quarantine code, at most w_crash_limit crash attempts *)
  List.iter
    (fun (u, code) ->
      if not (List.mem u serial_failed || List.mem u serial_skipped) then begin
        Alcotest.(check bool)
          (Printf.sprintf "%s failed or skipped under workers" u)
          true
          (List.mem u workers_failed || List.mem u workers_skipped);
        if List.mem u workers_failed then begin
          let ds = List.assoc u workers.Driver.st_failed in
          Alcotest.(check string)
            (Printf.sprintf "%s diagnostic code" u)
            code (List.hd ds).Diag.code;
          Alcotest.(check string)
            (Printf.sprintf "%s unit stamped" u)
            u
            (Option.value ~default:"?" (List.hd ds).Diag.unit_name)
        end
      end)
    [ (crash_unit, "E0701"); (hang_unit, "E0702") ];
  Alcotest.(check bool) "crash attempts bounded by limit" true
    (metric "worker.crashes" - crashes0 <= 2);
  (* every unit the workers run completed is byte-identical to serial *)
  let completed stats srcs =
    List.filter
      (fun f ->
        not
          (List.mem f (failed_names stats) || List.mem f (skipped_names stats)))
      srcs
  in
  List.iter
    (fun f ->
      Alcotest.(check string)
        (Printf.sprintf "completed bin %s matches serial" f)
        (bin_of fs_s f) (bin_of fs_w f))
    (completed workers sources);
  (* chaos-free rerun after fixing the broken source: recompiles exactly
     failed ∪ skipped and converges clean, byte-identical to a clean
     serial project *)
  let fs_clean, mgr_clean, _ = project topology in
  let _ = Driver.build mgr_clean ~policy:Driver.Cutoff ~sources in
  let fixed = Option.get (fs_clean.Vfs.fs_read "u002.sml") in
  fs_w.Vfs.fs_write "u002.sml" fixed;
  let rerun =
    Driver.build
      ~backend:(Driver.Workers (wcfg ~jobs:3 ()))
      ~keep_going:true mgr_w ~policy:Driver.Cutoff ~sources
  in
  check_files "rerun converges clean" [] (failed_names rerun);
  check_files "rerun skips nothing" [] (skipped_names rerun);
  check_files "rerun recompiles exactly failed ∪ skipped"
    (sorted (workers_failed @ workers_skipped))
    (sorted rerun.Driver.st_recompiled);
  List.iter
    (fun f ->
      Alcotest.(check string)
        (Printf.sprintf "converged bin %s" f)
        (bin_of fs_clean f) (bin_of fs_w f))
    sources

let test_acceptance_chaos_dags () = List.iter (fun seed -> acceptance_for ~seed) [ 5; 23 ]

(* ------------------------------------------------------------------ *)
(* Cross-process trace aggregation                                     *)
(* ------------------------------------------------------------------ *)

module Trace = Obs.Trace

(* the merged-trace property: a Workers build under chaos still yields
   ONE well-formed Chrome trace — child compile spans land in parent
   time (offset-corrected, so they nest under the build span), every
   track's spans are properly bracketed, and a crashed worker's dying
   job appears as a salvaged span marked truncated *)
let check_merged_trace ~chaos ~expect_truncated seed =
  let topology = Gen.Random_dag { units = 8; max_deps = 3; seed } in
  let _fs, mgr, sources = project topology in
  Trace.enable ();
  let finish () = Trace.disable () in
  Fun.protect ~finally:finish @@ fun () ->
  let _ =
    Driver.build
      ~backend:(Driver.Workers (wcfg ~jobs:2 ~chaos ()))
      ~keep_going:true mgr ~policy:Driver.Cutoff ~sources
  in
  let evs = Trace.events () in
  let parent_pid = 0 in
  let child_pids =
    List.filter (fun e -> e.Trace.ev_pid <> parent_pid) evs
    |> List.map (fun e -> e.Trace.ev_pid)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool)
    (Printf.sprintf "child events present (seed %d)" seed)
    true
    (List.length child_pids >= 1);
  (* child compile spans were shifted into parent time: they start
     after the parent's build span did *)
  let build_span =
    List.find (fun e -> e.Trace.ev_name = "build") evs
  in
  List.iter
    (fun e ->
      if e.Trace.ev_pid <> parent_pid then begin
        Alcotest.(check bool)
          (Printf.sprintf "%s (pid %d) starts inside the build (seed %d)"
             e.Trace.ev_name e.Trace.ev_pid seed)
          true
          (e.Trace.ev_start_us >= build_span.Trace.ev_start_us -. 1000.)
      end)
    evs;
  (* per (pid, tid): start times non-decreasing (events () sorts) and
     spans properly nested — the same invariant scripts/check_trace.py
     enforces on the serialized file *)
  let tracks = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let k = (e.Trace.ev_pid, e.Trace.ev_tid) in
      Hashtbl.replace tracks k (e :: Option.value ~default:[] (Hashtbl.find_opt tracks k)))
    evs;
  Hashtbl.iter
    (fun (pid, tid) track ->
      let track = List.rev track in
      let last = ref neg_infinity in
      let stack = ref [] in
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (Printf.sprintf "pid %d tid %d monotone ts (seed %d)" pid tid seed)
            true
            (e.Trace.ev_start_us >= !last);
          last := e.Trace.ev_start_us;
          let start = e.Trace.ev_start_us in
          let stop = start +. e.Trace.ev_dur_us in
          (* pop closed intervals; 10ns slop for offset-corrected floats *)
          while !stack <> [] && start >= List.hd !stack -. 0.01 do
            stack := List.tl !stack
          done;
          (match !stack with
          | enclosing :: _ ->
            Alcotest.(check bool)
              (Printf.sprintf "pid %d tid %d %s nests (seed %d)" pid tid
                 e.Trace.ev_name seed)
              true
              (stop <= enclosing +. 0.01)
          | [] -> ());
          stack := stop :: !stack)
        track)
    tracks;
  let truncated =
    List.filter
      (fun e -> List.assoc_opt "truncated" e.Trace.ev_args = Some "true")
      evs
  in
  if expect_truncated then
    Alcotest.(check bool)
      (Printf.sprintf "crashed worker left a truncated span (seed %d)" seed)
      true
      (List.length truncated >= 1)
  else
    Alcotest.(check int)
      (Printf.sprintf "no truncated spans on a clean build (seed %d)" seed)
      0 (List.length truncated)

let test_trace_merge_clean () =
  List.iter (check_merged_trace ~chaos:[] ~expect_truncated:false) [ 3; 19 ]

let test_trace_merge_chaos () =
  List.iter
    (check_merged_trace
       ~chaos:[ ("u003.sml", Worker.Chaos_crash) ]
       ~expect_truncated:true)
    [ 3; 19 ]

let test_workers_pool_down_build () =
  let _fs, mgr, sources = project (Gen.Chain 3) in
  match
    Driver.build
      ~backend:(Driver.Workers (wcfg ~chaos:[ ("*", Worker.Chaos_nostart) ] ()))
      mgr ~policy:Driver.Cutoff ~sources
  with
  | _ -> Alcotest.fail "expected Pool_down"
  | exception Worker.Pool_down _ -> ()

let suite =
  [
    Alcotest.test_case "frame round trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame corruption detected" `Quick test_frame_corruption;
    Alcotest.test_case "wire exception round trip" `Quick
      test_wire_exn_roundtrip;
    Alcotest.test_case "pool echoes jobs" `Quick test_pool_echo;
    Alcotest.test_case "handler errors cross the pipe" `Quick
      test_pool_handler_error;
    Alcotest.test_case "crash quarantine after N attempts" `Quick
      test_pool_crash_quarantine;
    Alcotest.test_case "nonzero exit counts as crash" `Quick
      test_pool_exit_is_crash;
    Alcotest.test_case "hung job times out" `Quick test_pool_timeout;
    Alcotest.test_case "wedged worker loses heartbeat" `Quick
      test_pool_wedge_heartbeat_loss;
    Alcotest.test_case "pool death raises Pool_down" `Quick test_pool_down;
    Alcotest.test_case "chaos env parsing" `Quick test_chaos_of_env;
    Alcotest.test_case "workers ≡ serial on clean DAGs" `Quick
      test_workers_match_serial_clean;
    Alcotest.test_case "workers incremental no-op" `Quick
      test_workers_incremental_noop;
    Alcotest.test_case "acceptance: chaos DAGs, partitions, convergence"
      `Quick test_acceptance_chaos_dags;
    Alcotest.test_case "merged trace well-formed (clean)" `Quick
      test_trace_merge_clean;
    Alcotest.test_case "merged trace well-formed (chaos, truncated spans)"
      `Quick test_trace_merge_chaos;
    Alcotest.test_case "pool death aborts the build" `Quick
      test_workers_pool_down_build;
  ]
