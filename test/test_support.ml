(* Support substrate: symbol interning, locations, diagnostics. *)

module Symbol = Support.Symbol
module Loc = Support.Loc
module Diag = Support.Diag

let test_intern_identity () =
  let a = Symbol.intern "foo" in
  let b = Symbol.intern "foo" in
  let c = Symbol.intern "bar" in
  Alcotest.(check bool) "same string, same symbol" true (Symbol.equal a b);
  Alcotest.(check int) "same id" (Symbol.id a) (Symbol.id b);
  Alcotest.(check bool) "different string, different symbol" false
    (Symbol.equal a c);
  Alcotest.(check string) "name preserved" "foo" (Symbol.name a)

let test_fresh_no_collision () =
  let f1 = Symbol.fresh "tmp" in
  let f2 = Symbol.fresh "tmp" in
  Alcotest.(check bool) "fresh symbols distinct" false (Symbol.equal f1 f2);
  (* '%' can't be written in source identifiers. *)
  Alcotest.(check bool) "marker present" true
    (String.contains (Symbol.name f1) '%')

let test_symbol_map () =
  let m =
    Symbol.Map.empty
    |> Symbol.Map.add (Symbol.intern "x") 1
    |> Symbol.Map.add (Symbol.intern "y") 2
    |> Symbol.Map.add (Symbol.intern "x") 3
  in
  Alcotest.(check int) "overwrite" 3 (Symbol.Map.find (Symbol.intern "x") m);
  Alcotest.(check int) "cardinal" 2 (Symbol.Map.cardinal m)

let test_loc_merge () =
  let p o l c = { Loc.line = l; col = c; offset = o } in
  let a = Loc.make "f.sml" (p 0 1 0) (p 5 1 5) in
  let b = Loc.make "f.sml" (p 10 2 0) (p 15 2 5) in
  let m = Loc.merge a b in
  Alcotest.(check int) "merge start" 0 m.Loc.start_pos.Loc.offset;
  Alcotest.(check int) "merge end" 15 m.Loc.end_pos.Loc.offset;
  let m' = Loc.merge b a in
  Alcotest.(check int) "merge symmetric start" 0 m'.Loc.start_pos.Loc.offset

let test_loc_pp () =
  let p o l c = { Loc.line = l; col = c; offset = o } in
  let a = Loc.make "f.sml" (p 0 3 2) (p 5 3 7) in
  Alcotest.(check string) "single-line form" "f.sml:3.2-7" (Loc.to_string a);
  let b = Loc.make "f.sml" (p 0 3 2) (p 30 4 1) in
  Alcotest.(check string) "multi-line form" "f.sml:3.2-4.1" (Loc.to_string b)

let test_diag_guard () =
  let ok = Diag.guard (fun () -> 42) in
  Alcotest.(check bool) "ok passes through" true (ok = Ok 42);
  let err =
    Diag.guard (fun () -> Diag.error Diag.Parse Loc.dummy "unexpected %s" "eof")
  in
  match err with
  | Ok _ -> Alcotest.fail "expected error"
  | Error d ->
    Alcotest.(check string) "message formatted" "unexpected eof" d.Diag.message;
    Alcotest.(check string) "phase name" "syntax error"
      (Diag.phase_name d.Diag.phase)

let test_phase_names_total () =
  let phases =
    [
      Diag.Lex;
      Diag.Parse;
      Diag.Elaborate;
      Diag.Translate;
      Diag.Pickle;
      Diag.Link;
      Diag.Execute;
      Diag.Manager;
    ]
  in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        "phase has a non-empty name" true
        (String.length (Diag.phase_name p) > 0))
    phases;
  let names = List.map Diag.phase_name phases in
  Alcotest.(check int)
    "phase names are distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check string) "pickle phase renders" "pickle error"
    (Diag.phase_name Diag.Pickle)

let qcheck_intern_bijective =
  QCheck.Test.make ~count:300 ~name:"symbol: intern is injective on names"
    QCheck.(pair (string_of_size Gen.(1 -- 20)) (string_of_size Gen.(1 -- 20)))
    (fun (a, b) ->
      let sa = Symbol.intern a and sb = Symbol.intern b in
      String.equal a b = Symbol.equal sa sb)

let test_backoff_deterministic () =
  let seq seed =
    let bo = Support.Backoff.create ~seed ~base_s:0.05 ~cap_s:1.0 () in
    List.init 8 (fun k -> Support.Backoff.delay bo ~attempt:k)
  in
  Alcotest.(check (list (float 0.)))
    "same seed, same delays" (seq 42) (seq 42);
  Alcotest.(check bool)
    "different seeds diverge" false
    (List.equal Float.equal (seq 42) (seq 43))

let test_backoff_envelope () =
  let bo = Support.Backoff.create ~seed:7 ~base_s:0.05 ~cap_s:1.0 () in
  for k = 0 to 40 do
    let d = Support.Backoff.delay bo ~attempt:k in
    let ceiling = Float.min 1.0 (0.05 *. float_of_int (1 lsl min k 16)) in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d within [ceiling/2, 1.5*ceiling)" k)
      true
      (d >= (ceiling /. 2.) -. 1e-9 && d < (ceiling *. 1.5) +. 1e-9)
  done;
  let off = Support.Backoff.create ~seed:7 ~base_s:0. ~cap_s:1.0 () in
  Alcotest.(check (float 0.))
    "zero base disables backoff" 0.
    (Support.Backoff.delay off ~attempt:5)

let suite =
  [
    Alcotest.test_case "intern identity" `Quick test_intern_identity;
    Alcotest.test_case "fresh symbols" `Quick test_fresh_no_collision;
    Alcotest.test_case "symbol maps" `Quick test_symbol_map;
    Alcotest.test_case "loc merge" `Quick test_loc_merge;
    Alcotest.test_case "loc printing" `Quick test_loc_pp;
    Alcotest.test_case "diag guard" `Quick test_diag_guard;
    Alcotest.test_case "phase names total" `Quick test_phase_names_total;
    Alcotest.test_case "backoff deterministic" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "backoff envelope" `Quick test_backoff_envelope;
    QCheck_alcotest.to_alcotest qcheck_intern_bijective;
  ]
