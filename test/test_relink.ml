(* Live relinking: swap classification, cone attribution, transactional
   rollback (the swap-chaos harness), epoch lifecycle, and the E0801 /
   E0802 boundary diagnostics. *)

module Driver = Irm.Driver
module Relink = Link.Relink
module Codeunit = Link.Codeunit
module Diag = Support.Diag
module Pid = Digestkit.Pid
module Symbol = Support.Symbol

(* A printing three-unit chain (base <- mid <- top) plus one
   independent unit, so cone attribution is observable both ways. *)
let base_src tag =
  Printf.sprintf
    "structure Base = struct val origin = 10 fun scale n = n * origin val p \
     = print \"B%s\" end"
    tag

let mid_src = "structure Mid = struct val v = Base.scale 2 val p = print \"M\" end"

let top_src =
  "structure Top = struct val result = Mid.v + Base.origin val p = print \
   (intToString result) end"

let solo_src = "structure Solo = struct val p = print \"S\" end"

let chain_files ?(tag = "") () =
  [
    ("base.sml", base_src tag);
    ("mid.sml", mid_src);
    ("top.sml", top_src);
    ("solo.sml", solo_src);
  ]

let sources = [ "base.sml"; "mid.sml"; "top.sml"; "solo.sml" ]

let setup files =
  let fs = Vfs.memory () in
  List.iter (fun (p, s) -> fs.Vfs.fs_write p s) files;
  (fs, Driver.create fs)

(* build (Cutoff, so impl edits don't cascade) and snapshot for the
   relinker *)
let snapshot mgr =
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  (stats, Driver.link_snapshot mgr)

let fresh_live files =
  let fs, mgr = setup files in
  let _, units = snapshot mgr in
  let rl = Relink.create () in
  Relink.baseline rl ~units;
  (fs, mgr, rl)

(* what a clean restart at [files] prints *)
let cold_output files =
  let _, mgr = setup files in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  let buf = Buffer.create 32 in
  ignore (Driver.run ~output:(Buffer.add_string buf) mgr ~sources);
  Buffer.contents buf

let replay_output rl =
  let p = Relink.pin rl in
  let buf = Buffer.create 32 in
  Relink.replay p ~output:(Buffer.add_string buf);
  Relink.unpin rl p;
  Buffer.contents buf

let check_counters what rl ~null ~impl ~epoch ~rollbacks =
  let c = Relink.counters rl in
  Alcotest.(check (list int))
    what
    [ null; impl; epoch; rollbacks ]
    [ c.Relink.c_null; c.Relink.c_impl; c.Relink.c_epoch; c.Relink.c_rollbacks ]

(* ------------------------------------------------------------------ *)
(* Classification and attribution                                      *)
(* ------------------------------------------------------------------ *)

let test_baseline_replay_matches_run () =
  let files = chain_files () in
  let _, _, rl = fresh_live files in
  Alcotest.(check bool) "live" true (Relink.live rl);
  Alcotest.(check int) "epoch 0" 0 (Relink.current_epoch rl);
  Alcotest.(check string) "replay = cold restart" (cold_output files)
    (replay_output rl)

let test_null_swap () =
  let _, mgr, rl = fresh_live (chain_files ()) in
  let _, units = snapshot mgr in
  let o = Relink.swap rl ~units in
  Alcotest.(check bool) "null kind" true (o.Relink.o_kind = Relink.Null);
  Alcotest.(check int) "same epoch" 0 o.Relink.o_epoch;
  Alcotest.(check (list string)) "nothing relinked" [] o.Relink.o_relinked;
  check_counters "counters" rl ~null:1 ~impl:0 ~epoch:0 ~rollbacks:0

let test_impl_swap_relinks_exactly_the_unit () =
  let fs, mgr, rl = fresh_live (chain_files ()) in
  (* implementation edit confined to base's own output *)
  fs.Vfs.fs_write "base.sml" (base_src "!");
  let stats, units = snapshot mgr in
  Alcotest.(check (list string))
    "cutoff recompiles only base" [ "base.sml" ] stats.Driver.st_recompiled;
  let o = Relink.swap rl ~units in
  Alcotest.(check bool) "impl kind" true (o.Relink.o_kind = Relink.Impl);
  Alcotest.(check int) "epoch unchanged" 0 o.Relink.o_epoch;
  Alcotest.(check (list string))
    "exactly the edited unit" [ "base.sml" ] o.Relink.o_relinked;
  (* cutoff left dependents' bins untouched, the edit changed only
     base's own print — so the swapped state reads like a clean restart *)
  Alcotest.(check string)
    "replay = cold restart at new"
    (cold_output (chain_files ~tag:"!" ()))
    (replay_output rl);
  check_counters "counters" rl ~null:0 ~impl:1 ~epoch:0 ~rollbacks:0

let test_epoch_swap_relinks_the_importing_cone () =
  let fs, mgr, rl = fresh_live (chain_files ()) in
  (* interface edit: Base gains an exported binding *)
  fs.Vfs.fs_write "base.sml"
    "structure Base = struct val origin = 10 val extra = 1 fun scale n = n * \
     origin val p = print \"B\" end";
  let stats, units = snapshot mgr in
  let o = Relink.swap rl ~units in
  Alcotest.(check bool) "epoch kind" true (o.Relink.o_kind = Relink.Epoch_bump);
  Alcotest.(check int) "epoch bumped" 1 o.Relink.o_epoch;
  Alcotest.(check (list string))
    "the importing cone, not the independent unit"
    [ "base.sml"; "mid.sml"; "top.sml" ]
    (List.sort compare o.Relink.o_relinked);
  (* attribution cross-check: the relinked set is exactly what the
     build itself recompiled for this interface change *)
  Alcotest.(check (list string))
    "matches the rebuild cone"
    (List.sort compare stats.Driver.st_recompiled)
    (List.sort compare o.Relink.o_relinked);
  check_counters "counters" rl ~null:0 ~impl:0 ~epoch:1 ~rollbacks:0

let test_epoch_swap_matches_cold_restart () =
  let fs, mgr, rl = fresh_live (chain_files ()) in
  let edited =
    "structure Base = struct val origin = 11 val extra = 1 fun scale n = n * \
     origin val p = print \"B2\" end"
  in
  fs.Vfs.fs_write "base.sml" edited;
  let _, units = snapshot mgr in
  let _ = Relink.swap rl ~units in
  Alcotest.(check string)
    "replay = cold restart at new"
    (cold_output
       [
         ("base.sml", edited);
         ("mid.sml", mid_src);
         ("top.sml", top_src);
         ("solo.sml", solo_src);
       ])
    (replay_output rl)

let test_mid_cone_excludes_base () =
  let fs, mgr, rl = fresh_live (chain_files ()) in
  fs.Vfs.fs_write "mid.sml"
    "structure Mid = struct val v = Base.scale 2 val extra = 1 val p = print \
     \"M\" end";
  let _, units = snapshot mgr in
  let o = Relink.swap rl ~units in
  Alcotest.(check bool) "epoch kind" true (o.Relink.o_kind = Relink.Epoch_bump);
  Alcotest.(check (list string))
    "only mid's importers" [ "mid.sml"; "top.sml" ]
    (List.sort compare o.Relink.o_relinked)

(* ------------------------------------------------------------------ *)
(* Epoch lifecycle                                                     *)
(* ------------------------------------------------------------------ *)

let bump fs mgr rl n =
  fs.Vfs.fs_write "base.sml"
    (Printf.sprintf
       "structure Base = struct val origin = 10 val extra%d = %d fun scale n \
        = n * origin val p = print \"B\" end"
       n n);
  let _, units = snapshot mgr in
  Relink.swap rl ~units

let test_pin_survives_epoch_swap () =
  let fs, mgr, rl = fresh_live (chain_files ()) in
  let before = replay_output rl in
  let p = Relink.pin rl in
  let _ = bump fs mgr rl 1 in
  Alcotest.(check int) "pin names old epoch" 0 (Relink.pinned_epoch p);
  let buf = Buffer.create 32 in
  Relink.replay p ~output:(Buffer.add_string buf);
  Alcotest.(check string) "pinned replay undisturbed" before
    (Buffer.contents buf);
  (match Relink.epochs rl with
  | [ e1; e0 ] ->
    Alcotest.(check int) "current is 1" 1 e1.Relink.ei_id;
    Alcotest.(check string) "old drains" "draining" e0.Relink.ei_state;
    Alcotest.(check int) "one pin" 1 e0.Relink.ei_pins
  | eps -> Alcotest.failf "expected 2 epochs, got %d" (List.length eps));
  Relink.unpin rl p;
  match Relink.epochs rl with
  | [ _; e0 ] ->
    Alcotest.(check string) "drained epoch retires" "retired"
      e0.Relink.ei_state;
    Alcotest.(check int) "retired env dropped" 0 e0.Relink.ei_units
  | eps -> Alcotest.failf "expected 2 epochs, got %d" (List.length eps)

let test_bounded_history () =
  let files = chain_files () in
  let fs, mgr = setup files in
  let _, units = snapshot mgr in
  let rl = Relink.create ~history:2 () in
  Relink.baseline rl ~units;
  for n = 1 to 5 do
    ignore (bump fs mgr rl n)
  done;
  let eps = Relink.epochs rl in
  Alcotest.(check bool)
    "history bounded to current + 2" true
    (List.length eps <= 3);
  match eps with
  | cur :: _ -> Alcotest.(check int) "newest first" 5 cur.Relink.ei_id
  | [] -> Alcotest.fail "no epochs"

(* ------------------------------------------------------------------ *)
(* Boundary diagnostics                                                *)
(* ------------------------------------------------------------------ *)

let state_fingerprint rl =
  (Relink.current_epoch rl, replay_output rl, List.length (Relink.epochs rl))

let test_seal_violation_E0801 () =
  let _, mgr, rl = fresh_live (chain_files ()) in
  let before = state_fingerprint rl in
  let _, units = snapshot mgr in
  (* tamper: base claims its interface pid is unchanged, but its
     exported surface maps to different pids — opaque ascription
     broken at the swap boundary *)
  let units =
    List.map
      (fun u ->
        if String.equal u.Relink.u_name "base.sml" then
          let cu = u.Relink.u_cu in
          {
            u with
            Relink.u_fingerprint = "tampered";
            u_cu =
              {
                cu with
                Codeunit.cu_exports =
                  List.map
                    (fun (sym, _) -> (sym, Pid.intrinsic "smuggled"))
                    cu.Codeunit.cu_exports;
              };
          }
        else u)
      units
  in
  (match Diag.guard (fun () -> Relink.swap rl ~units) with
  | Error d ->
    Alcotest.(check string) "E0801" "E0801" d.Diag.code;
    Alcotest.(check bool) "link phase" true (d.Diag.phase = Diag.Link)
  | Ok _ -> Alcotest.fail "expected a seal violation");
  Alcotest.(check bool)
    "rolled back to the prior state" true
    (state_fingerprint rl = before);
  Alcotest.(check int) "rollback counted" 1 (Relink.counters rl).Relink.c_rollbacks

let test_relink_conflict_E0802 () =
  let _, mgr, rl = fresh_live (chain_files ()) in
  let before = state_fingerprint rl in
  let _, units = snapshot mgr in
  (* drop a provider: mid still records its import of Base's export pid *)
  let units =
    List.filter (fun u -> not (String.equal u.Relink.u_name "base.sml")) units
  in
  (match Diag.guard (fun () -> Relink.swap rl ~units) with
  | Error d ->
    Alcotest.(check string) "E0802" "E0802" d.Diag.code;
    Alcotest.(check bool) "link phase" true (d.Diag.phase = Diag.Link)
  | Ok _ -> Alcotest.fail "expected a relink conflict");
  Alcotest.(check bool)
    "rolled back to the prior state" true
    (state_fingerprint rl = before);
  Alcotest.(check int) "rollback counted" 1 (Relink.counters rl).Relink.c_rollbacks

(* ------------------------------------------------------------------ *)
(* The swap-chaos harness                                              *)
(* ------------------------------------------------------------------ *)

exception Crash of string

let steps = [ "begin"; "stage"; "verify"; "seal"; "commit" ]

(* crash or abort a swap at every transaction step, for both swap
   kinds and both abort mechanisms: afterwards the dynenv must equal a
   clean restart at the old state, and a clean retry must land it at
   the new state — never a hybrid *)
let chaos ~edit ~edited_files () =
  List.iter
    (fun mechanism ->
      List.iteri
        (fun i step_name ->
          let files = chain_files () in
          let fs, mgr, rl = fresh_live files in
          let old_cold = cold_output files in
          fs.Vfs.fs_write "base.sml" edit;
          let _, units = snapshot mgr in
          (match mechanism with
          | `Crash -> (
            match
              Relink.swap rl
                ~on_step:(fun s ->
                  if String.equal s step_name then raise (Crash s))
                ~units
            with
            | _ -> Alcotest.failf "crash at %s did not surface" step_name
            | exception Crash s ->
              Alcotest.(check string) "crashed where injected" step_name s)
          | `Abort -> (
            let calls = ref 0 in
            match
              Relink.swap rl
                ~abort_check:(fun () ->
                  incr calls;
                  if !calls = i + 1 then Some ("client gone at " ^ step_name)
                  else None)
                ~units
            with
            | _ -> Alcotest.failf "abort at %s did not surface" step_name
            | exception Relink.Swap_aborted reason ->
              Alcotest.(check string)
                "aborted where injected"
                ("client gone at " ^ step_name)
                reason));
          Alcotest.(check int)
            (step_name ^ ": rollback counted")
            1
            (Relink.counters rl).Relink.c_rollbacks;
          Alcotest.(check string)
            (step_name ^ ": dynenv = clean restart at old")
            old_cold (replay_output rl);
          (* the same swap, retried cleanly, lands at the new state *)
          let _, units = snapshot mgr in
          let _ = Relink.swap rl ~units in
          Alcotest.(check string)
            (step_name ^ ": retry = clean restart at new")
            (cold_output edited_files) (replay_output rl))
        steps)
    [ `Crash; `Abort ]

let impl_edit = base_src "!"

let iface_edit =
  "structure Base = struct val origin = 10 val extra = 1 fun scale n = n * \
   origin val p = print \"B\" end"

let test_chaos_impl_swap () =
  chaos ~edit:impl_edit
    ~edited_files:
      [
        ("base.sml", impl_edit);
        ("mid.sml", mid_src);
        ("top.sml", top_src);
        ("solo.sml", solo_src);
      ]
    ()

let test_chaos_epoch_swap () =
  chaos ~edit:iface_edit
    ~edited_files:
      [
        ("base.sml", iface_edit);
        ("mid.sml", mid_src);
        ("top.sml", top_src);
        ("solo.sml", solo_src);
      ]
    ()

let test_watchdog () =
  let fs, mgr, rl = fresh_live (chain_files ()) in
  let before = state_fingerprint rl in
  fs.Vfs.fs_write "base.sml" impl_edit;
  let _, units = snapshot mgr in
  (match Relink.swap rl ~budget_s:(-1.) ~units with
  | _ -> Alcotest.fail "expected the watchdog to abort"
  | exception Relink.Swap_aborted reason ->
    Alcotest.(check bool)
      "watchdog named" true
      (String.length reason >= 8 && String.sub reason 0 8 = "watchdog"));
  Alcotest.(check bool)
    "rolled back" true
    (state_fingerprint rl = before)

(* a seeded random walk: edits (impl or interface), half of them
   crashed at a random step — after every operation the live dynenv
   must equal a clean restart at the accepted source state *)
let test_chaos_random_walk () =
  let rng = Random.State.make [| 0x5ead |] in
  let files = ref (chain_files ()) in
  let fs, mgr, rl = fresh_live !files in
  let impl_tag = ref 0 and iface_n = ref 0 in
  for _ = 1 to 20 do
    let proposed =
      if Random.State.bool rng then begin
        incr impl_tag;
        Printf.sprintf
          "structure Base = struct val origin = 10%s fun scale n = n * origin \
           val p = print \"B%d\" end"
          (if !iface_n > 0 then
             Printf.sprintf " val extra%d = %d" !iface_n !iface_n
           else "")
          !impl_tag
      end
      else begin
        incr iface_n;
        Printf.sprintf
          "structure Base = struct val origin = 10 val extra%d = %d fun scale \
           n = n * origin val p = print \"B%d\" end"
          !iface_n !iface_n !impl_tag
      end
    in
    fs.Vfs.fs_write "base.sml" proposed;
    let _, units = snapshot mgr in
    if Random.State.bool rng then begin
      (* crash at a random step; the proposal is rejected *)
      let at = List.nth steps (Random.State.int rng (List.length steps)) in
      match
        Relink.swap rl
          ~on_step:(fun s -> if String.equal s at then raise (Crash s))
          ~units
      with
      | _ -> Alcotest.fail "injected crash did not surface"
      | exception Crash _ -> ()
    end
    else begin
      ignore (Relink.swap rl ~units);
      files := ("base.sml", proposed) :: List.remove_assoc "base.sml" !files
    end;
    Alcotest.(check string)
      "dynenv = clean restart at the accepted state"
      (cold_output !files) (replay_output rl)
  done

let suite =
  [
    Alcotest.test_case "baseline replay = cold restart" `Quick
      test_baseline_replay_matches_run;
    Alcotest.test_case "null swap" `Quick test_null_swap;
    Alcotest.test_case "impl swap relinks exactly the unit" `Quick
      test_impl_swap_relinks_exactly_the_unit;
    Alcotest.test_case "epoch swap relinks the importing cone" `Quick
      test_epoch_swap_relinks_the_importing_cone;
    Alcotest.test_case "epoch swap = cold restart" `Quick
      test_epoch_swap_matches_cold_restart;
    Alcotest.test_case "mid's cone excludes base" `Quick
      test_mid_cone_excludes_base;
    Alcotest.test_case "pin survives an epoch swap" `Quick
      test_pin_survives_epoch_swap;
    Alcotest.test_case "bounded epoch history" `Quick test_bounded_history;
    Alcotest.test_case "E0801 seal violation rolls back" `Quick
      test_seal_violation_E0801;
    Alcotest.test_case "E0802 relink conflict rolls back" `Quick
      test_relink_conflict_E0802;
    Alcotest.test_case "chaos: impl swap" `Quick test_chaos_impl_swap;
    Alcotest.test_case "chaos: epoch swap" `Quick test_chaos_epoch_swap;
    Alcotest.test_case "watchdog budget aborts" `Quick test_watchdog;
    Alcotest.test_case "chaos: seeded random walk" `Quick
      test_chaos_random_walk;
  ]
