(* The wavefront scheduler: dispatch mechanics (ordering, failure
   determinism) on toy graphs, and the headline property — a parallel
   build is indistinguishable from a serial one: same bin bytes, same
   export pids, same recompiled/loaded/cache/cutoff partitions, under
   every policy. *)

module Gen = Workload.Gen
module Driver = Irm.Driver
module Pid = Digestkit.Pid

(* ---- mechanics on a toy diamond: a <- {b, c} <- d ---- *)

let toy_order = [ "a"; "b"; "c"; "d" ]

let toy_deps = function
  | "d" -> [ "b"; "c" ]
  | "b" | "c" -> [ "a" ]
  | _ -> []

let backends = [ Sched.Serial; Sched.Parallel 3 ]

let test_outcomes_in_caller_order () =
  List.iter
    (fun backend ->
      let outcomes =
        Sched.run backend ~order:toy_order ~deps:toy_deps
          ~prepare:(fun node ->
            if String.equal node "c" then Sched.Done "cached-c"
            else Sched.Run node)
          ~execute:(fun node -> "ran-" ^ node)
          ~complete:(fun _ result -> result)
      in
      Alcotest.(check (list string))
        (Sched.backend_name backend ^ ": caller order")
        toy_order (List.map fst outcomes);
      List.iter
        (fun (node, outcome) ->
          match outcome with
          | Sched.Completed result ->
            let expected =
              if String.equal node "c" then "cached-c" else "ran-" ^ node
            in
            Alcotest.(check string) node expected result
          | Sched.Failed _ | Sched.Skipped _ ->
            Alcotest.fail (node ^ " should have completed"))
        outcomes)
    backends

let test_earliest_failure_raised () =
  (* b and c both fail; the surfaced error must be b's (the earliest
     failed node in the given order), whatever completed first *)
  List.iter
    (fun backend ->
      match
        Sched.run backend ~order:toy_order ~deps:toy_deps
          ~prepare:(fun node -> Sched.Run node)
          ~execute:(fun node ->
            match node with "b" | "c" -> failwith node | _ -> node)
          ~complete:(fun _ result -> result)
      with
      | _ -> Alcotest.fail "expected the build to fail"
      | exception Failure culprit ->
        Alcotest.(check string)
          (Sched.backend_name backend ^ ": earliest failure")
          "b" culprit)
    backends

exception Abort_now of string

let test_fatal_overrides_keep_going () =
  (* under keep_going a failure is contained to its cone — but an exn
     the caller declares fatal (the CLI's SIGINT) must abort the whole
     build immediately, on every backend *)
  List.iter
    (fun backend ->
      (match
         Sched.run ~keep_going:true
           ~fatal:(function Abort_now _ -> true | _ -> false)
           backend ~order:toy_order ~deps:toy_deps
           ~prepare:(fun node -> Sched.Run node)
           ~execute:(fun node ->
             if String.equal node "b" then raise (Abort_now node) else node)
           ~complete:(fun _ result -> result)
       with
      | _ -> Alcotest.fail "fatal exception must escape keep_going"
      | exception Abort_now culprit ->
        Alcotest.(check string)
          (Sched.backend_name backend ^ ": fatal re-raised")
          "b" culprit);
      (* the same failure without the fatal predicate stays contained *)
      let outcomes =
        Sched.run ~keep_going:true backend ~order:toy_order ~deps:toy_deps
          ~prepare:(fun node -> Sched.Run node)
          ~execute:(fun node ->
            if String.equal node "b" then raise (Abort_now node) else node)
          ~complete:(fun _ result -> result)
      in
      List.iter
        (fun (node, outcome) ->
          match (node, outcome) with
          | "b", Sched.Failed (Abort_now _) | "d", Sched.Skipped _ -> ()
          | ("a" | "c"), Sched.Completed _ -> ()
          | _ -> Alcotest.fail (node ^ ": unexpected outcome"))
        outcomes)
    backends

let test_complete_respects_deps () =
  (* on a 40-node dag under heavy parallelism, every [complete] must
     still see all its dependencies completed (they run on the calling
     domain, so no locking is needed to observe this) *)
  let n = 40 in
  let name i = Printf.sprintf "n%02d" i in
  let deps_of node =
    let i = int_of_string (String.sub node 1 2) in
    if i = 0 then []
    else
      List.sort_uniq compare [ ((i * 7) + 1) mod i; ((i * 13) + 5) mod i ]
      |> List.map name
  in
  let order = List.init n name in
  let completed = Hashtbl.create n in
  let outcomes =
    Sched.run (Sched.Parallel 8) ~order ~deps:deps_of
      ~prepare:(fun node -> Sched.Run node)
      ~execute:(fun node -> node)
      ~complete:(fun node result ->
        List.iter
          (fun dep ->
            if not (Hashtbl.mem completed dep) then
              Alcotest.fail
                (Printf.sprintf "%s completed before its dependency %s" node
                   dep))
          (deps_of node);
        Hashtbl.replace completed node ();
        result)
  in
  Alcotest.(check int) "all nodes completed" n (List.length outcomes)

(* ---- parallel ≡ serial on generated projects ---- *)

let policies = [ Driver.Timestamp; Driver.Cutoff; Driver.Selective ]

(* Cold build, implementation edit, interface edit — rebuilding after
   each — then collect everything observable: the per-build partitions,
   every unit's bin bytes, every unit's export pid. *)
let build_sequence backend policy ~seed ~units =
  let fs = Vfs.memory () in
  let project =
    Gen.create fs
      (Gen.Random_dag { units; max_deps = 3; seed })
      Gen.default_profile
  in
  let mgr = Driver.create fs in
  let sources = Gen.sources project in
  let partitions stats =
    ( stats.Driver.st_recompiled,
      stats.Driver.st_loaded,
      stats.Driver.st_cache_hits,
      stats.Driver.st_cutoff_hits )
  in
  let s0 = Driver.build ~backend mgr ~policy ~sources in
  Gen.edit project (Gen.middle_file project) Gen.Impl_change;
  let s1 = Driver.build ~backend mgr ~policy ~sources in
  Gen.edit project (Gen.base_file project) Gen.Iface_change;
  let s2 = Driver.build ~backend mgr ~policy ~sources in
  let bins =
    List.map (fun f -> Option.get (fs.Vfs.fs_read (f ^ ".bin"))) sources
  in
  let exports =
    List.map
      (fun f -> Pid.to_hex (Driver.unit_of mgr f).Pickle.Binfile.uf_static_pid)
      sources
  in
  (List.map partitions [ s0; s1; s2 ], bins, exports)

let check_parallel_equals_serial policy ~seed ~jobs ~units =
  let parts_s, bins_s, exports_s =
    build_sequence Driver.Serial policy ~seed ~units
  in
  let parts_p, bins_p, exports_p =
    build_sequence (Driver.Parallel jobs) policy ~seed ~units
  in
  if parts_s <> parts_p then
    Alcotest.fail
      (Printf.sprintf "%s/seed %d: build partitions differ"
         (Driver.policy_name policy) seed);
  Alcotest.(check (list string))
    (Printf.sprintf "%s/seed %d: export pids" (Driver.policy_name policy) seed)
    exports_s exports_p;
  List.iteri
    (fun i b_s ->
      if not (String.equal b_s (List.nth bins_p i)) then
        Alcotest.fail
          (Printf.sprintf "%s/seed %d: bin bytes of unit %d differ"
             (Driver.policy_name policy) seed i))
    bins_s

let test_parallel_equals_serial policy () =
  check_parallel_equals_serial policy ~seed:23 ~jobs:4 ~units:12

let prop_parallel_equals_serial =
  QCheck.Test.make ~count:6 ~name:"parallel build = serial build"
    QCheck.(
      triple (int_range 0 1000) (int_range 2 6)
        (oneofl ~print:Driver.policy_name policies))
    (fun (seed, jobs, policy) ->
      check_parallel_equals_serial policy ~seed ~jobs ~units:10;
      true)

let suite =
  [
    Alcotest.test_case "outcomes in caller order" `Quick
      test_outcomes_in_caller_order;
    Alcotest.test_case "earliest failure raised" `Quick
      test_earliest_failure_raised;
    Alcotest.test_case "fatal overrides keep_going" `Quick
      test_fatal_overrides_keep_going;
    Alcotest.test_case "complete respects dependencies" `Quick
      test_complete_respects_deps;
    Alcotest.test_case "parallel = serial (timestamp)" `Quick
      (test_parallel_equals_serial Driver.Timestamp);
    Alcotest.test_case "parallel = serial (cutoff)" `Quick
      (test_parallel_equals_serial Driver.Cutoff);
    Alcotest.test_case "parallel = serial (selective)" `Quick
      (test_parallel_equals_serial Driver.Selective);
    QCheck_alcotest.to_alcotest prop_parallel_equals_serial;
  ]
