(* The wavefront scheduler: dispatch mechanics (ordering, failure
   determinism) on toy graphs, and the headline property — a parallel
   build is indistinguishable from a serial one: same bin bytes, same
   export pids, same recompiled/loaded/cache/cutoff partitions, under
   every policy. *)

module Gen = Workload.Gen
module Driver = Irm.Driver
module Pid = Digestkit.Pid

(* ---- mechanics on a toy diamond: a <- {b, c} <- d ---- *)

let toy_order = [ "a"; "b"; "c"; "d" ]

let toy_deps = function
  | "d" -> [ "b"; "c" ]
  | "b" | "c" -> [ "a" ]
  | _ -> []

let backends = [ Sched.Serial; Sched.Parallel 3 ]

let test_outcomes_in_caller_order () =
  List.iter
    (fun backend ->
      let outcomes =
        Sched.run backend ~order:toy_order ~deps:toy_deps
          ~prepare:(fun node ->
            if String.equal node "c" then Sched.Done "cached-c"
            else Sched.Run node)
          ~execute:(fun node -> "ran-" ^ node)
          ~complete:(fun _ result -> result)
      in
      Alcotest.(check (list string))
        (Sched.backend_name backend ^ ": caller order")
        toy_order (List.map fst outcomes);
      List.iter
        (fun (node, outcome) ->
          match outcome with
          | Sched.Completed result ->
            let expected =
              if String.equal node "c" then "cached-c" else "ran-" ^ node
            in
            Alcotest.(check string) node expected result
          | Sched.Failed _ | Sched.Skipped _ ->
            Alcotest.fail (node ^ " should have completed"))
        outcomes)
    backends

let test_earliest_failure_raised () =
  (* b and c both fail; the surfaced error must be b's (the earliest
     failed node in the given order), whatever completed first *)
  List.iter
    (fun backend ->
      match
        Sched.run backend ~order:toy_order ~deps:toy_deps
          ~prepare:(fun node -> Sched.Run node)
          ~execute:(fun node ->
            match node with "b" | "c" -> failwith node | _ -> node)
          ~complete:(fun _ result -> result)
      with
      | _ -> Alcotest.fail "expected the build to fail"
      | exception Failure culprit ->
        Alcotest.(check string)
          (Sched.backend_name backend ^ ": earliest failure")
          "b" culprit)
    backends

exception Abort_now of string

let test_fatal_overrides_keep_going () =
  (* under keep_going a failure is contained to its cone — but an exn
     the caller declares fatal (the CLI's SIGINT) must abort the whole
     build immediately, on every backend *)
  List.iter
    (fun backend ->
      (match
         Sched.run ~keep_going:true
           ~fatal:(function Abort_now _ -> true | _ -> false)
           backend ~order:toy_order ~deps:toy_deps
           ~prepare:(fun node -> Sched.Run node)
           ~execute:(fun node ->
             if String.equal node "b" then raise (Abort_now node) else node)
           ~complete:(fun _ result -> result)
       with
      | _ -> Alcotest.fail "fatal exception must escape keep_going"
      | exception Abort_now culprit ->
        Alcotest.(check string)
          (Sched.backend_name backend ^ ": fatal re-raised")
          "b" culprit);
      (* the same failure without the fatal predicate stays contained *)
      let outcomes =
        Sched.run ~keep_going:true backend ~order:toy_order ~deps:toy_deps
          ~prepare:(fun node -> Sched.Run node)
          ~execute:(fun node ->
            if String.equal node "b" then raise (Abort_now node) else node)
          ~complete:(fun _ result -> result)
      in
      List.iter
        (fun (node, outcome) ->
          match (node, outcome) with
          | "b", Sched.Failed (Abort_now _) | "d", Sched.Skipped _ -> ()
          | ("a" | "c"), Sched.Completed _ -> ()
          | _ -> Alcotest.fail (node ^ ": unexpected outcome"))
        outcomes)
    backends

let test_complete_respects_deps () =
  (* on a 40-node dag under heavy parallelism, every [complete] must
     still see all its dependencies completed (they run on the calling
     domain, so no locking is needed to observe this) *)
  let n = 40 in
  let name i = Printf.sprintf "n%02d" i in
  let deps_of node =
    let i = int_of_string (String.sub node 1 2) in
    if i = 0 then []
    else
      List.sort_uniq compare [ ((i * 7) + 1) mod i; ((i * 13) + 5) mod i ]
      |> List.map name
  in
  let order = List.init n name in
  let completed = Hashtbl.create n in
  let outcomes =
    Sched.run (Sched.Parallel 8) ~order ~deps:deps_of
      ~prepare:(fun node -> Sched.Run node)
      ~execute:(fun node -> node)
      ~complete:(fun node result ->
        List.iter
          (fun dep ->
            if not (Hashtbl.mem completed dep) then
              Alcotest.fail
                (Printf.sprintf "%s completed before its dependency %s" node
                   dep))
          (deps_of node);
        Hashtbl.replace completed node ();
        result)
  in
  Alcotest.(check int) "all nodes completed" n (List.length outcomes)

(* ---- priority-aware dispatch ---- *)

let test_priority_dispatch_order () =
  (* Serial executes inline, so the execute log IS the dispatch order.
     No map / a constant map must reproduce the exact caller order (the
     priority queue may never perturb the wavefront default); a skewed
     map dispatches highest-first with caller-order ties. *)
  let run ?priority ~order ~deps () =
    let log = ref [] in
    ignore
      (Sched.run ?priority Sched.Serial ~order ~deps
         ~prepare:(fun node -> Sched.Run node)
         ~execute:(fun node ->
           log := node :: !log;
           node)
         ~complete:(fun _ result -> result));
    List.rev !log
  in
  let order = [ "a"; "b"; "c"; "d" ] and deps _ = [] in
  Alcotest.(check (list string))
    "default: caller order" order
    (run ~order ~deps ());
  Alcotest.(check (list string))
    "equal priorities: caller order" order
    (run ~priority:(fun _ -> 7.) ~order ~deps ());
  let skew = function "c" -> 3. | "b" -> 2. | _ -> 0. in
  Alcotest.(check (list string))
    "highest first, ties in caller order"
    [ "c"; "b"; "a"; "d" ]
    (run ~priority:skew ~order ~deps ());
  (* priorities steer only among *ready* nodes: favouring the diamond's
     sink cannot dispatch it before its dependencies *)
  let favour_sink = function "d" -> 10. | "c" -> 1. | _ -> 0. in
  Alcotest.(check (list string))
    "priority cannot jump the dependency gates"
    [ "a"; "c"; "b"; "d" ]
    (run ~priority:favour_sink ~order:toy_order ~deps:toy_deps ())

let test_split_overlaps_codegen () =
  (* a <- b at Parallel 2: a releases its static view 20ms in, then
     spends ~300ms in codegen.  b must demonstrably begin inside that
     window — the overlap the pipelined split exists to create — and
     the static payload must arrive via sp_on_static on the caller. *)
  let a_finished = Atomic.make 0. in
  let b_started = Atomic.make 0. in
  let statics = ref [] in
  let split =
    {
      Sched.sp_execute =
        (fun ~notify node ->
          (if String.equal node "a" then (
             Unix.sleepf 0.02;
             notify "static-of-a";
             Unix.sleepf 0.3;
             Atomic.set a_finished (Unix.gettimeofday ()))
           else Atomic.set b_started (Unix.gettimeofday ()));
          "ran-" ^ node);
      sp_on_static =
        (fun node payload -> statics := (node, payload) :: !statics);
    }
  in
  let outcomes =
    Sched.run ~split (Sched.Parallel 2) ~order:[ "a"; "b" ]
      ~deps:(function "b" -> [ "a" ] | _ -> [])
      ~prepare:(fun node -> Sched.Run node)
      ~execute:(fun node -> "ran-" ^ node)
      ~complete:(fun _ result -> result)
  in
  List.iter
    (fun (node, outcome) ->
      match outcome with
      | Sched.Completed result ->
        Alcotest.(check string) node ("ran-" ^ node) result
      | Sched.Failed _ | Sched.Skipped _ ->
        Alcotest.fail (node ^ " should have completed"))
    outcomes;
  Alcotest.(check (list (pair string string)))
    "static payload routed to the calling domain"
    [ ("a", "static-of-a") ]
    !statics;
  let b_started = Atomic.get b_started
  and a_finished = Atomic.get a_finished in
  if b_started = 0. || a_finished = 0. then
    Alcotest.fail "both executes should have run";
  if b_started >= a_finished then
    Alcotest.fail
      (Printf.sprintf "no overlap: b started %.0fms after a finished codegen"
         ((b_started -. a_finished) *. 1e3))

(* ---- priorities and the split never change outcomes ---- *)

(* A random DAG at the Sched level: a seeded subset of nodes fail and a
   seeded priority map skews dispatch.  Under keep_going the outcome
   list — payloads, failure messages, skip culprits — must be identical
   to the plain serial wavefront on every backend and job count, with
   and without the split.  Failing nodes raise *after* releasing their
   static view, so the property also covers the poison-after-release
   path: a dependent that started speculatively must still settle as
   the same [Skipped] a serial run reports. *)

let sched_case ~nodes ~seed =
  let rng = Random.State.make [| seed |] in
  let name i = Printf.sprintf "n%02d" i in
  let order = List.init nodes name in
  let deps_tbl = Hashtbl.create nodes in
  let fails_tbl = Hashtbl.create nodes in
  let prio_tbl = Hashtbl.create nodes in
  List.iteri
    (fun i node ->
      let deps =
        if i = 0 then []
        else
          List.init (Random.State.int rng 3) (fun _ ->
              name (Random.State.int rng i))
          |> List.sort_uniq compare
      in
      Hashtbl.replace deps_tbl node deps;
      if Random.State.int rng 4 = 0 then Hashtbl.replace fails_tbl node ();
      Hashtbl.replace prio_tbl node (float_of_int (Random.State.int rng 5)))
    order;
  ( order,
    (fun node -> Hashtbl.find deps_tbl node),
    (fun node -> Hashtbl.mem fails_tbl node),
    fun node -> Hashtbl.find prio_tbl node )

let outcome_repr outcomes =
  List.map
    (fun (node, outcome) ->
      ( node,
        match outcome with
        | Sched.Completed result -> "completed:" ^ result
        | Sched.Failed (Failure msg) -> "failed:" ^ msg
        | Sched.Failed exn -> "failed:" ^ Printexc.to_string exn
        | Sched.Skipped culprit -> "skipped:" ^ culprit ))
    outcomes

let run_sched_case ?priority ~with_split backend (order, deps, fails, _) =
  let body node =
    if fails node then failwith ("boom-" ^ node) else "ok-" ^ node
  in
  let split =
    {
      Sched.sp_execute =
        (fun ~notify node ->
          notify ("static-" ^ node);
          body node);
      sp_on_static = (fun _ _ -> ());
    }
  in
  Sched.run ?priority
    ?split:(if with_split then Some split else None)
    ~keep_going:true backend ~order ~deps
    ~prepare:(fun node -> Sched.Run node)
    ~execute:body
    ~complete:(fun _ result -> result)
  |> outcome_repr

let prop_priorities_preserve_outcomes =
  QCheck.Test.make ~count:8 ~name:"priorities + split never change outcomes"
    QCheck.(pair (int_range 0 1000) (int_range 8 24))
    (fun (seed, nodes) ->
      let ((_, _, _, priority) as case) = sched_case ~nodes ~seed in
      let reference = run_sched_case ~with_split:false Sched.Serial case in
      List.iter
        (fun backend ->
          List.iter
            (fun with_split ->
              let got =
                run_sched_case ~priority ~with_split backend case
              in
              if got <> reference then
                QCheck.Test.fail_reportf
                  "seed %d, %d nodes, %s, split=%b: outcomes diverge from \
                   the serial wavefront"
                  seed nodes
                  (Sched.backend_name backend)
                  with_split)
            [ false; true ])
        [ Sched.Serial; Sched.Parallel 1; Sched.Parallel 2; Sched.Parallel 4 ];
      true)

(* ---- parallel ≡ serial on generated projects ---- *)

let policies = [ Driver.Timestamp; Driver.Cutoff; Driver.Selective ]

(* Cold build, implementation edit, interface edit — rebuilding after
   each — then collect everything observable: the per-build partitions,
   every unit's bin bytes, every unit's export pid. *)
let build_sequence ?(schedule = Driver.Wavefront) backend policy ~seed ~units =
  let fs = Vfs.memory () in
  let project =
    Gen.create fs
      (Gen.Random_dag { units; max_deps = 3; seed })
      Gen.default_profile
  in
  let mgr = Driver.create fs in
  let sources = Gen.sources project in
  let partitions stats =
    ( stats.Driver.st_recompiled,
      stats.Driver.st_loaded,
      stats.Driver.st_cache_hits,
      stats.Driver.st_cutoff_hits )
  in
  let s0 = Driver.build ~backend ~schedule mgr ~policy ~sources in
  Gen.edit project (Gen.middle_file project) Gen.Impl_change;
  let s1 = Driver.build ~backend ~schedule mgr ~policy ~sources in
  Gen.edit project (Gen.base_file project) Gen.Iface_change;
  let s2 = Driver.build ~backend ~schedule mgr ~policy ~sources in
  let bins =
    List.map (fun f -> Option.get (fs.Vfs.fs_read (f ^ ".bin"))) sources
  in
  let exports =
    List.map
      (fun f -> Pid.to_hex (Driver.unit_of mgr f).Pickle.Binfile.uf_static_pid)
      sources
  in
  (List.map partitions [ s0; s1; s2 ], bins, exports)

let check_parallel_equals_serial policy ~seed ~jobs ~units =
  let parts_s, bins_s, exports_s =
    build_sequence Driver.Serial policy ~seed ~units
  in
  let parts_p, bins_p, exports_p =
    build_sequence (Driver.Parallel jobs) policy ~seed ~units
  in
  if parts_s <> parts_p then
    Alcotest.fail
      (Printf.sprintf "%s/seed %d: build partitions differ"
         (Driver.policy_name policy) seed);
  Alcotest.(check (list string))
    (Printf.sprintf "%s/seed %d: export pids" (Driver.policy_name policy) seed)
    exports_s exports_p;
  List.iteri
    (fun i b_s ->
      if not (String.equal b_s (List.nth bins_p i)) then
        Alcotest.fail
          (Printf.sprintf "%s/seed %d: bin bytes of unit %d differ"
             (Driver.policy_name policy) seed i))
    bins_s

let test_parallel_equals_serial policy () =
  check_parallel_equals_serial policy ~seed:23 ~jobs:4 ~units:12

let test_critical_path_equals_wavefront () =
  (* the critical-path schedule — cold-estimate priorities plus the
     pipelined split threaded through compile, the static rehydrate
     path and the dependent's import reads — must leave everything
     observable byte-identical to the wavefront, serial and parallel,
     across a cold build and both edit kinds *)
  let reference =
    build_sequence ~schedule:Driver.Wavefront Driver.Serial Driver.Cutoff
      ~seed:41 ~units:12
  in
  List.iter
    (fun backend ->
      let got =
        build_sequence ~schedule:Driver.Critical_path backend Driver.Cutoff
          ~seed:41 ~units:12
      in
      if got <> reference then
        Alcotest.fail
          (Printf.sprintf "critical-path on %s diverges from the wavefront"
             (match backend with
             | Driver.Serial -> "serial"
             | Driver.Parallel n -> Printf.sprintf "parallel-%d" n
             | Driver.Workers _ -> "workers"
             | Driver.Remote _ -> "remote")))
    [ Driver.Serial; Driver.Parallel 4 ]

let prop_parallel_equals_serial =
  QCheck.Test.make ~count:6 ~name:"parallel build = serial build"
    QCheck.(
      triple (int_range 0 1000) (int_range 2 6)
        (oneofl ~print:Driver.policy_name policies))
    (fun (seed, jobs, policy) ->
      check_parallel_equals_serial policy ~seed ~jobs ~units:10;
      true)

let suite =
  [
    Alcotest.test_case "outcomes in caller order" `Quick
      test_outcomes_in_caller_order;
    Alcotest.test_case "earliest failure raised" `Quick
      test_earliest_failure_raised;
    Alcotest.test_case "fatal overrides keep_going" `Quick
      test_fatal_overrides_keep_going;
    Alcotest.test_case "complete respects dependencies" `Quick
      test_complete_respects_deps;
    Alcotest.test_case "priority dispatch order" `Quick
      test_priority_dispatch_order;
    Alcotest.test_case "split overlaps dependent with codegen" `Quick
      test_split_overlaps_codegen;
    QCheck_alcotest.to_alcotest prop_priorities_preserve_outcomes;
    Alcotest.test_case "critical-path = wavefront" `Quick
      test_critical_path_equals_wavefront;
    Alcotest.test_case "parallel = serial (timestamp)" `Quick
      (test_parallel_equals_serial Driver.Timestamp);
    Alcotest.test_case "parallel = serial (cutoff)" `Quick
      (test_parallel_equals_serial Driver.Cutoff);
    Alcotest.test_case "parallel = serial (selective)" `Quick
      (test_parallel_equals_serial Driver.Selective);
    QCheck_alcotest.to_alcotest prop_parallel_equals_serial;
  ]
