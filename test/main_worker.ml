(* The worker suite runs in its own executable: the supervisor forks
   child processes, and OCaml 5 forbids Unix.fork in a process that has
   ever created other domains — which the main suite's Parallel-backend
   tests do. *)
let () =
  Alcotest.run "smlsep-worker"
    [ ("worker", Test_worker.suite); ("lock-crash", Test_lockcrash.suite) ]
