(* The distributed build fabric, driven forklessly in one process: the
   executor and cache services run in [Inline] reactor mode on real
   sockets, and the fleet's [r_tick] / the cache client's [tick] pump
   their reactors from inside every client wait loop — so builds cross
   actual socket buffers while client and servers interleave
   deterministically in a single domain (fork is unsafe once OCaml
   domains exist, and the chaos matrix must be reproducible anyway).

   The headline harness: over random DAGs × policies × schedules ×
   seeded network fault plans (refused connects, resets, black holes,
   stragglers, torn frames, duplicated replies), every remote build
   must converge to bins byte-identical to a fault-free serial build —
   and when every executor is dead, the build must still complete
   locally (or fail E0703, when fallback is off). *)

module Gen = Workload.Gen
module Driver = Irm.Driver
module Wire = Irm.Wire
module Diag = Support.Diag
module Transport = Remote.Transport
module Netchaos = Remote.Netchaos
module Netsrv = Remote.Netsrv
module Fleet = Remote.Fleet
module Exec = Remote.Exec
module Cached = Remote.Cached
module Cache_client = Remote.Cache_client

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "smlsep-r%d-%d.sock" (Unix.getpid ()) !n)

let bins_of fs sources =
  List.map (fun f -> Option.get (fs.Vfs.fs_read (f ^ ".bin"))) sources

(* the fault-free serial reference for a topology *)
let reference topology =
  let fs = Vfs.memory () in
  let project = Gen.create fs topology Gen.default_profile in
  let sources = Gen.sources project in
  let mgr = Driver.create fs in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  bins_of fs sources

(* a fleet config tuned for in-process pumping: short deadlines, eager
   hedge, near-zero backoff, all logging captured *)
let fleet_cfg ?(chaos = []) ?(fallback = true) ?(log = ignore) ~tick execs =
  {
    (Fleet.default_config ~execs) with
    Fleet.r_job_timeout_s = 2.;
    r_dial_timeout_s = 2.;
    r_retries = 2;
    r_hedge_s = 0.3;
    r_quarantine = 2;
    r_backoff_s = 0.001;
    r_backoff_cap_s = 0.01;
    r_chaos = chaos;
    r_tick = Some tick;
    r_local_fallback = fallback;
    r_log = log;
  }

let with_exec f =
  let exec =
    Exec.create ~mode:Exec.Inline
      (Transport.Unix_sock (fresh_sock ()))
      (Wire.proto ())
  in
  Fun.protect ~finally:(fun () -> Exec.stop exec) @@ fun () -> f exec

let pump_exec exec () = if Exec.running exec then Exec.step ~timeout_s:0. exec

(* ------------------------------------------------------------------ *)
(* Addresses and fault plans                                           *)
(* ------------------------------------------------------------------ *)

let test_parse_addr () =
  (match Transport.parse_addr "unix:/tmp/x.sock" with
  | Ok (Transport.Unix_sock p) -> Alcotest.(check string) "unix" "/tmp/x.sock" p
  | _ -> Alcotest.fail "unix: must parse");
  (match Transport.parse_addr "tcp:localhost:7777" with
  | Ok (Transport.Tcp (h, p)) ->
    Alcotest.(check string) "host" "localhost" h;
    Alcotest.(check int) "port" 7777 p
  | _ -> Alcotest.fail "tcp: must parse");
  (match Transport.parse_addr "/var/run/d.sock" with
  | Ok (Transport.Unix_sock _) -> ()
  | _ -> Alcotest.fail "bare path is a unix socket");
  match Transport.parse_addr "tcp:host:notaport" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad port must not parse"

let test_seeded_plans_deterministic () =
  let p1 = Netchaos.seeded_plan ~seed:42 ~ops:40 in
  let p2 = Netchaos.seeded_plan ~seed:42 ~ops:40 in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check bool) "plans are non-empty" true (List.length p1 > 0);
  let all_same =
    List.for_all
      (fun s -> Netchaos.seeded_plan ~seed:s ~ops:40 = p1)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "different seeds diverge" false all_same;
  (* the env contract the CI chaos job uses *)
  Unix.putenv Netchaos.env_var "42:40";
  let from_env = Netchaos.of_env () in
  Unix.putenv Netchaos.env_var "";
  Alcotest.(check bool) "SMLSEP_NET_CHAOS=SEED:OPS reproduces the plan" true
    (from_env = Some p1)

let test_chaos_refused_connect () =
  let inj =
    Netchaos.injector
      [ { Netchaos.ce_op = Netchaos.Connect; ce_at = 1; ce_fault = Netchaos.Refuse } ]
  in
  let addr = Transport.Unix_sock (fresh_sock ()) in
  (match Transport.dial ~chaos:inj addr with
  | _ -> Alcotest.fail "chaos Refuse must raise"
  | exception Transport.Unreachable _ -> ());
  Alcotest.(check int) "fault fired" 1 (Netchaos.fired inj)

(* ------------------------------------------------------------------ *)
(* Remote builds against live executors                                *)
(* ------------------------------------------------------------------ *)

let test_remote_build_matches_serial () =
  let topology = Gen.Diamond 3 in
  let ref_bins = reference topology in
  with_exec @@ fun exec ->
  let fs = Vfs.memory () in
  let project = Gen.create fs topology Gen.default_profile in
  let sources = Gen.sources project in
  let mgr = Driver.create fs in
  let cfg = fleet_cfg ~tick:(pump_exec exec) [ Exec.addr exec ] in
  let stats =
    Driver.build mgr ~backend:(Driver.Remote cfg) ~policy:Driver.Cutoff
      ~sources
  in
  Alcotest.(check int) "every unit compiled remotely"
    (List.length sources)
    (List.length stats.Driver.st_recompiled);
  Alcotest.(check bool) "bins byte-identical to serial" true
    (bins_of fs sources = ref_bins)

(* regression: a Reset that lands on the job send itself (the frame
   dies before a copy is registered) used to strand the job — popped
   from the queue, absent from every copy list, invisible to expire
   and hedge — and next_event spun forever.  The failed send must
   count as an attempt and requeue. *)
let test_send_reset_requeues_the_job () =
  let topology = Gen.Diamond 3 in
  let ref_bins = reference topology in
  with_exec @@ fun exec ->
  let fs = Vfs.memory () in
  let project = Gen.create fs topology Gen.default_profile in
  let sources = Gen.sources project in
  let mgr = Driver.create fs in
  (* send #1 is the HELLO; #3 is a job frame mid-build *)
  let chaos =
    [ { Netchaos.ce_op = Netchaos.Send; ce_at = 3; ce_fault = Netchaos.Reset } ]
  in
  let cfg = fleet_cfg ~chaos ~tick:(pump_exec exec) [ Exec.addr exec ] in
  let stats =
    Driver.build mgr ~backend:(Driver.Remote cfg) ~policy:Driver.Cutoff
      ~sources
  in
  Alcotest.(check int) "every unit compiled"
    (List.length sources)
    (List.length stats.Driver.st_recompiled);
  Alcotest.(check bool) "bins byte-identical to serial" true
    (bins_of fs sources = ref_bins)

let test_two_executors_share_the_build () =
  let topology = Gen.Fanout 6 in
  let ref_bins = reference topology in
  with_exec @@ fun e1 ->
  with_exec @@ fun e2 ->
  let fs = Vfs.memory () in
  let project = Gen.create fs topology Gen.default_profile in
  let sources = Gen.sources project in
  let mgr = Driver.create fs in
  let tick () =
    pump_exec e1 ();
    pump_exec e2 ()
  in
  let cfg = fleet_cfg ~tick [ Exec.addr e1; Exec.addr e2 ] in
  let stats =
    Driver.build mgr ~backend:(Driver.Remote cfg) ~policy:Driver.Cutoff
      ~sources
  in
  (* slot accounting is per executor: one busy entry each *)
  Alcotest.(check int) "two executor slots accounted" 2 stats.Driver.st_jobs;
  Alcotest.(check bool) "both executors held work" true
    (List.for_all (fun s -> s >= 0.) stats.Driver.st_slot_busy_s);
  Alcotest.(check bool) "bins byte-identical to serial" true
    (bins_of fs sources = ref_bins)

let test_all_executors_dead_falls_back () =
  let topology = Gen.Chain 4 in
  let ref_bins = reference topology in
  let fs = Vfs.memory () in
  let project = Gen.create fs topology Gen.default_profile in
  let sources = Gen.sources project in
  let mgr = Driver.create fs in
  let logs = ref [] in
  (* nobody has ever listened on these addresses *)
  let execs =
    [ Transport.Unix_sock (fresh_sock ()); Transport.Unix_sock (fresh_sock ()) ]
  in
  let cfg =
    fleet_cfg ~log:(fun m -> logs := m :: !logs) ~tick:(fun () -> ()) execs
  in
  let stats =
    Driver.build mgr ~backend:(Driver.Remote cfg) ~policy:Driver.Cutoff
      ~sources
  in
  Alcotest.(check int) "build completed in full" (List.length sources)
    (List.length stats.Driver.st_recompiled);
  Alcotest.(check bool) "bins byte-identical to serial" true
    (bins_of fs sources = ref_bins);
  Alcotest.(check bool) "degradation warned once" true
    (List.exists
       (fun m ->
         let re = "local compiles" in
         let rec find i =
           i + String.length re <= String.length m
           && (String.sub m i (String.length re) = re || find (i + 1))
         in
         find 0)
       !logs)

let test_no_fallback_surfaces_e0703 () =
  let fs = Vfs.memory () in
  let project = Gen.create fs (Gen.Chain 3) Gen.default_profile in
  let sources = Gen.sources project in
  let mgr = Driver.create fs in
  let cfg =
    fleet_cfg ~fallback:false
      ~tick:(fun () -> ())
      [ Transport.Unix_sock (fresh_sock ()) ]
  in
  match
    Driver.build mgr ~backend:(Driver.Remote cfg) ~policy:Driver.Cutoff
      ~sources
  with
  | _ -> Alcotest.fail "a fallback-less dead fleet must fail the build"
  | exception Diag.Error d ->
    Alcotest.(check string) "remote-unreachable diagnostic" "E0703"
      d.Diag.code

let test_executor_killed_mid_build () =
  let topology = Gen.Random_dag { units = 6; max_deps = 3; seed = 97 } in
  let ref_bins = reference topology in
  with_exec @@ fun exec ->
  let fs = Vfs.memory () in
  let project = Gen.create fs topology Gen.default_profile in
  let sources = Gen.sources project in
  let mgr = Driver.create fs in
  let logs = ref [] in
  let ticks = ref 0 in
  let tick () =
    incr ticks;
    (* the partition: after a few reactor turns the executor vanishes
       mid-build, taking whatever it held with it *)
    if !ticks = 5 && Exec.running exec then Exec.stop exec;
    pump_exec exec ()
  in
  let cfg = fleet_cfg ~log:(fun m -> logs := m :: !logs) ~tick [ Exec.addr exec ] in
  let stats =
    Driver.build mgr ~backend:(Driver.Remote cfg) ~policy:Driver.Cutoff
      ~sources
  in
  Alcotest.(check int) "build completed in full" (List.length sources)
    (List.length stats.Driver.st_recompiled);
  Alcotest.(check bool) "bins byte-identical to serial" true
    (bins_of fs sources = ref_bins)

(* ------------------------------------------------------------------ *)
(* The chaos matrix                                                    *)
(* ------------------------------------------------------------------ *)

(* random DAGs x policies x schedules x seeded fault plans: whatever
   the network does to the client side of every connection, the build
   converges byte-identically (published seed on failure) *)
let test_chaos_matrix () =
  let policies = [| Driver.Timestamp; Driver.Cutoff; Driver.Selective |] in
  let schedules = [| Driver.Wavefront; Driver.Critical_path |] in
  for seed = 1 to 12 do
    let topology = Gen.Random_dag { units = 5; max_deps = 3; seed } in
    let ref_bins = reference topology in
    let plan = Netchaos.seeded_plan ~seed ~ops:40 in
    with_exec @@ fun exec ->
    let fs = Vfs.memory () in
    let project = Gen.create fs topology Gen.default_profile in
    let sources = Gen.sources project in
    let mgr = Driver.create fs in
    let cfg = fleet_cfg ~chaos:plan ~tick:(pump_exec exec) [ Exec.addr exec ] in
    let policy = policies.(seed mod Array.length policies) in
    let schedule = schedules.(seed mod Array.length schedules) in
    let stats =
      Driver.build mgr ~backend:(Driver.Remote cfg) ~schedule ~policy ~sources
    in
    if bins_of fs sources <> ref_bins then
      Alcotest.failf
        "chaos divergence: seed %d (%s, %s, plan %s) — bins differ from serial"
        seed
        (Driver.policy_name policy)
        (Driver.schedule_name schedule)
        (Format.asprintf "%a" Netchaos.pp_plan plan);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: build completed in full" seed)
      (List.length sources)
      (List.length stats.Driver.st_recompiled)
  done

(* ------------------------------------------------------------------ *)
(* The shared cache service                                            *)
(* ------------------------------------------------------------------ *)

let with_cached f =
  let fs = Vfs.memory () in
  let srv =
    Cached.create ~shards:4 ~dir:"cache" (Transport.Unix_sock (fresh_sock ())) fs
  in
  Fun.protect ~finally:(fun () -> Cached.stop srv) @@ fun () -> f srv

let pump_cached srv () = if Cached.running srv then Cached.step ~timeout_s:0. srv

let test_cache_service_roundtrip () =
  with_cached @@ fun srv ->
  let tick = pump_cached srv in
  let a = Cache_client.create ~tick ~log:ignore (Cached.addr srv) in
  let b =
    Cache_client.create
      ~local:(Cache.ops (Cache.create (Vfs.memory ())))
      ~tick ~log:ignore (Cached.addr srv)
  in
  Fun.protect ~finally:(fun () ->
      Cache_client.close a;
      Cache_client.close b)
  @@ fun () ->
  let key = "deadbeefdeadbeefdeadbeefdeadbeef" in
  (Cache_client.ops a).Cache.o_store key "unit bytes";
  (* one builder's put is every builder's hit *)
  Alcotest.(check (option string)) "b reads a's put" (Some "unit bytes")
    ((Cache_client.ops b).Cache.o_find key);
  Alcotest.(check int) "hit came over the wire" 1 (Cache_client.remote_hits b);
  (* the read-through populated b's local store: the next probe is local *)
  Alcotest.(check (option string)) "second read is local" (Some "unit bytes")
    ((Cache_client.ops b).Cache.o_find key);
  Alcotest.(check int) "no second wire hit" 1 (Cache_client.remote_hits b);
  (* puts are idempotent — content addressing makes racers identical *)
  (Cache_client.ops b).Cache.o_store key "unit bytes";
  Alcotest.(check int) "no conflicts" 0 (Cached.conflicts srv);
  Alcotest.(check bool) "nobody degraded" false
    (Cache_client.degraded a || Cache_client.degraded b);
  Alcotest.(check bool) "misses counted" true
    (Cache_client.remote_misses a >= 0 && Cached.served srv > 0)

let test_cache_service_down_degrades () =
  let local = Cache.create (Vfs.memory ()) in
  let logs = ref [] in
  let c =
    Cache_client.create ~local:(Cache.ops local)
      ~log:(fun m -> logs := m :: !logs)
      ~timeout_s:0.2
      (Transport.Unix_sock (fresh_sock ()))
  in
  Fun.protect ~finally:(fun () -> Cache_client.close c) @@ fun () ->
  let ops = Cache_client.ops c in
  (* ops never raise; they quietly become local-only *)
  Alcotest.(check (option string)) "miss without a service" None
    (ops.Cache.o_find "00aa");
  ops.Cache.o_store "00aa" "bytes";
  Alcotest.(check bool) "client degraded" true (Cache_client.degraded c);
  Alcotest.(check (option string)) "local store still works" (Some "bytes")
    (ops.Cache.o_find "00aa");
  Alcotest.(check bool) "degradation warned" true (!logs <> [])

let test_shared_cache_warms_a_second_builder () =
  let topology = Gen.Diamond 2 in
  with_cached @@ fun srv ->
  let tick = pump_cached srv in
  let build_with_fresh_builder () =
    let fs = Vfs.memory () in
    let project = Gen.create fs topology Gen.default_profile in
    let sources = Gen.sources project in
    let mgr = Driver.create fs in
    let client =
      Cache_client.create
        ~local:(Cache.ops (Cache.create (Vfs.memory ())))
        ~tick ~log:ignore (Cached.addr srv)
    in
    Fun.protect ~finally:(fun () -> Cache_client.close client) @@ fun () ->
    let stats =
      Driver.build mgr ~cache:(Cache_client.ops client) ~policy:Driver.Cutoff
        ~sources
    in
    (stats, bins_of fs sources)
  in
  let cold, cold_bins = build_with_fresh_builder () in
  Alcotest.(check int) "cold builder compiles everything"
    (List.length cold.Driver.st_order)
    (List.length cold.Driver.st_recompiled);
  (* a different machine, same sources: every unit is a service hit *)
  let warm, warm_bins = build_with_fresh_builder () in
  Alcotest.(check int) "warm builder compiles nothing" 0
    (List.length warm.Driver.st_recompiled);
  Alcotest.(check int) "every unit came from the shared cache"
    (List.length warm.Driver.st_order)
    (List.length warm.Driver.st_cache_hits);
  Alcotest.(check bool) "warm bins byte-identical" true
    (warm_bins = cold_bins)

let suite =
  [
    Alcotest.test_case "parse addr" `Quick test_parse_addr;
    Alcotest.test_case "seeded plans deterministic" `Quick
      test_seeded_plans_deterministic;
    Alcotest.test_case "chaos refuses a connect" `Quick
      test_chaos_refused_connect;
    Alcotest.test_case "remote build = serial build" `Quick
      test_remote_build_matches_serial;
    Alcotest.test_case "send-reset requeues the job" `Quick
      test_send_reset_requeues_the_job;
    Alcotest.test_case "two executors share the build" `Quick
      test_two_executors_share_the_build;
    Alcotest.test_case "all executors dead: local fallback" `Quick
      test_all_executors_dead_falls_back;
    Alcotest.test_case "no fallback: E0703" `Quick
      test_no_fallback_surfaces_e0703;
    Alcotest.test_case "executor killed mid-build" `Quick
      test_executor_killed_mid_build;
    Alcotest.test_case "chaos matrix: byte-identity" `Slow test_chaos_matrix;
    Alcotest.test_case "cache service roundtrip" `Quick
      test_cache_service_roundtrip;
    Alcotest.test_case "cache service down: degrade" `Quick
      test_cache_service_down_degrades;
    Alcotest.test_case "shared cache warms a second builder" `Quick
      test_shared_cache_warms_a_second_builder;
  ]
