(* irm — the Incremental Recompilation Manager as a command-line tool.

     irm build sources.cm --policy cutoff
     irm run sources.cm
     irm deps sources.cm

   A group file lists source paths, one per line; dependency order is
   computed automatically (section 8 of the paper). *)

let parse_policy = function
  | "cutoff" -> Ok Irm.Driver.Cutoff
  | "timestamp" -> Ok Irm.Driver.Timestamp
  | "selective" -> Ok Irm.Driver.Selective
  | other -> Error (`Msg (Printf.sprintf "unknown policy %S" other))

let with_manager dir group f =
  let fs = Vfs.real ~dir in
  let sources = Irm.Group.load fs group in
  let mgr = Irm.Driver.create fs in
  f fs mgr sources

let guarded f =
  match Support.Diag.guard f with
  | Ok code -> code
  | Error d ->
    prerr_endline (Support.Diag.to_string d);
    1
  | exception Dynamics.Eval.Sml_raise packet ->
    Printf.eprintf "uncaught exception: %s\n" (Dynamics.Value.to_string packet);
    1
  | exception Dynamics.Eval.Sml_exit code -> code
  | exception Sys_error msg ->
    prerr_endline msg;
    1

let build_cmd_impl dir group policy =
  guarded (fun () ->
      with_manager dir group (fun _fs mgr sources ->
          let stats = Irm.Driver.build mgr ~policy ~sources in
          List.iter
            (fun file ->
              let unit_ = Irm.Driver.unit_of mgr file in
              let tag =
                if List.exists (String.equal file) stats.Irm.Driver.st_recompiled
                then
                  if List.exists (String.equal file) stats.Irm.Driver.st_cutoff_hits
                  then "recompiled (interface unchanged)"
                  else "recompiled"
                else "up to date"
              in
              Printf.printf "%-24s %s  [%s]\n" file
                (Digestkit.Pid.short unit_.Pickle.Binfile.uf_static_pid)
                tag)
            stats.Irm.Driver.st_order;
          Printf.printf "%d recompiled, %d up to date (%s policy)\n"
            (List.length stats.Irm.Driver.st_recompiled)
            (List.length stats.Irm.Driver.st_loaded)
            (Irm.Driver.policy_name policy);
          0))

let run_cmd_impl dir group policy =
  guarded (fun () ->
      with_manager dir group (fun _fs mgr sources ->
          let _ = Irm.Driver.build mgr ~policy ~sources in
          let _ = Irm.Driver.run mgr ~sources in
          0))

let deps_cmd_impl dir group dot =
  guarded (fun () ->
      with_manager dir group (fun fs _mgr sources ->
          let parsed =
            List.map
              (fun file ->
                match fs.Vfs.fs_read file with
                | Some src -> (file, Lang.Parser.parse_unit ~file src)
                | None ->
                  Support.Diag.error Support.Diag.Manager Support.Loc.dummy
                    "source file %s not found" file)
              sources
          in
          let graph = Depend.Depgraph.build parsed in
          let order = Depend.Depgraph.topological graph in
          if dot then begin
            print_endline "digraph deps {";
            print_endline "  rankdir=BT;";
            List.iter
              (fun file ->
                let node = Depend.Depgraph.node graph file in
                if node.Depend.Depgraph.n_deps = [] then
                  Printf.printf "  %S;\n" file
                else
                  List.iter
                    (fun dep -> Printf.printf "  %S -> %S;\n" file dep)
                    node.Depend.Depgraph.n_deps)
              order;
            print_endline "}"
          end
          else
            List.iter
              (fun file ->
                let node = Depend.Depgraph.node graph file in
                Printf.printf "%s: %s\n" file
                  (String.concat " " node.Depend.Depgraph.n_deps))
              order;
          0))

open Cmdliner

let dir_arg =
  Arg.(
    value & opt dir "."
    & info [ "C"; "directory" ] ~docv:"DIR" ~doc:"Project root directory.")

let group_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"GROUP" ~doc:"Group file listing the source files.")

let policy_arg =
  let policy_conv =
    Arg.conv ~docv:"POLICY"
      ( parse_policy,
        fun ppf p -> Format.pp_print_string ppf (Irm.Driver.policy_name p) )
  in
  Arg.(
    value & opt policy_conv Irm.Driver.Cutoff
    & info [ "p"; "policy" ] ~docv:"POLICY"
        ~doc:
          "Recompilation policy: $(b,cutoff) (interface pids), \
           $(b,selective) (per-module interface pids) or $(b,timestamp) \
           (classical make).")

let build_cmd =
  Cmd.v
    (Cmd.info "build" ~doc:"bring every unit of the group up to date")
    Term.(const build_cmd_impl $ dir_arg $ group_arg $ policy_arg)

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"build, then execute all units in dependency order")
    Term.(const run_cmd_impl $ dir_arg $ group_arg $ policy_arg)

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of text.")

let deps_cmd =
  Cmd.v
    (Cmd.info "deps" ~doc:"print the computed dependency graph")
    Term.(const deps_cmd_impl $ dir_arg $ group_arg $ dot_arg)

let cmd =
  Cmd.group
    (Cmd.info "irm" ~doc:"incremental recompilation manager for MiniSML")
    [ build_cmd; run_cmd; deps_cmd ]

let () = exit (Cmd.eval' cmd)
