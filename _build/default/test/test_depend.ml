(* The dependency graph API: providers, reverse edges, transitive
   cones — what IDE-style tooling over the IRM would consume. *)

module Depgraph = Depend.Depgraph
module Symbol = Support.Symbol

let parse file src = (file, Lang.Parser.parse_unit ~file src)

(* base <- left, right; join <- left, right; top <- join *)
let graph () =
  Depgraph.build
    [
      parse "base.sml" "structure Base = struct val b = 1 end";
      parse "left.sml" "structure Left = struct val l = Base.b end";
      parse "right.sml" "structure Right = struct val r = Base.b end";
      parse "join.sml" "structure Join = struct val j = Left.l + Right.r end";
      parse "top.sml" "structure Top = struct val t = Join.j end";
    ]

let test_providers () =
  let g = graph () in
  Alcotest.(check (option string)) "Base" (Some "base.sml")
    (Depgraph.provider g (Symbol.intern "Base"));
  Alcotest.(check (option string)) "Join" (Some "join.sml")
    (Depgraph.provider g (Symbol.intern "Join"));
  Alcotest.(check (option string)) "unknown" None
    (Depgraph.provider g (Symbol.intern "Nowhere"))

let test_direct_dependents () =
  let g = graph () in
  Alcotest.(check (list string)) "of base"
    [ "left.sml"; "right.sml" ]
    (List.sort String.compare (Depgraph.dependents g "base.sml"));
  Alcotest.(check (list string)) "of join" [ "top.sml" ]
    (Depgraph.dependents g "join.sml");
  Alcotest.(check (list string)) "of top (a sink)" []
    (Depgraph.dependents g "top.sml")

let test_cone () =
  let g = graph () in
  Alcotest.(check (list string)) "cone of base is everything else"
    [ "join.sml"; "left.sml"; "right.sml"; "top.sml" ]
    (List.sort String.compare (Depgraph.cone g "base.sml"));
  Alcotest.(check (list string)) "cone of left"
    [ "join.sml"; "top.sml" ]
    (List.sort String.compare (Depgraph.cone g "left.sml"));
  Alcotest.(check (list string)) "cone excludes the root" []
    (Depgraph.cone g "top.sml")

let test_topological_respects_edges () =
  let g = graph () in
  let order = Depgraph.topological g in
  let position f =
    let rec go i = function
      | [] -> Alcotest.fail ("missing " ^ f)
      | x :: rest -> if String.equal x f then i else go (i + 1) rest
    in
    go 0 order
  in
  List.iter
    (fun file ->
      let node = Depgraph.node g file in
      List.iter
        (fun dep ->
          Alcotest.(check bool)
            (Printf.sprintf "%s after %s" file dep)
            true
            (position dep < position file))
        node.Depgraph.n_deps)
    order

let test_signature_and_functor_edges () =
  (* references through signatures and functor applications create
     edges too *)
  let g =
    Depgraph.build
      [
        parse "s.sml" "signature S = sig val x : int end";
        parse "f.sml" "functor F (X : S) = struct val y = X.x end";
        parse "a.sml" "structure A : S = struct val x = 1 end";
        parse "use.sml" "structure U = F(A)";
      ]
  in
  Alcotest.(check (list string)) "functor unit depends on the signature"
    [ "s.sml" ]
    (Depgraph.node g "f.sml").Depgraph.n_deps;
  Alcotest.(check (list string)) "application depends on functor and arg"
    [ "a.sml"; "f.sml" ]
    (List.sort String.compare (Depgraph.node g "use.sml").Depgraph.n_deps)

let test_where_type_edges () =
  let g =
    Depgraph.build
      [
        parse "t.sml" "structure T = struct type u = int end";
        parse "s.sml"
          "signature S = sig type t val v : t end where type t = T.u";
      ]
  in
  Alcotest.(check (list string)) "where-type reference creates an edge"
    [ "t.sml" ]
    (Depgraph.node g "s.sml").Depgraph.n_deps

let suite =
  [
    Alcotest.test_case "providers" `Quick test_providers;
    Alcotest.test_case "direct dependents" `Quick test_direct_dependents;
    Alcotest.test_case "transitive cones" `Quick test_cone;
    Alcotest.test_case "topological order respects edges" `Quick
      test_topological_respects_edges;
    Alcotest.test_case "signature/functor edges" `Quick
      test_signature_and_functor_edges;
    Alcotest.test_case "where-type edges" `Quick test_where_type_edges;
  ]
