(* The interactive loop: state accumulation, shadowing, type-directed
   printing, warnings, and error isolation. *)

module Interactive = Sepcomp.Interactive
module Diag = Support.Diag

let repl () =
  let buf = Buffer.create 64 in
  (Interactive.create ~output:(Buffer.add_string buf) (), buf)

let eval repl input = (Interactive.eval repl input).Interactive.bindings

let test_state_accumulates () =
  let t, _ = repl () in
  let _ = eval t "val a = 10" in
  let _ = eval t "val b = a * 2" in
  Alcotest.(check (list string)) "uses earlier bindings"
    [ "val c = 30 : int" ]
    (eval t "val c = a + b")

let test_shadowing () =
  let t, _ = repl () in
  let _ = eval t "val x = 1" in
  let _ = eval t "fun get () = x" in
  let _ = eval t "val x = \"shadow\"" in
  (* the closure still sees the old x; the new x has a new type *)
  Alcotest.(check (list string)) "closure keeps old x"
    [ "val it = 1 : int" ] (eval t "get ()");
  Alcotest.(check (list string)) "new x shadows"
    [ "val it = \"shadow\" : string" ] (eval t "x")

let test_type_directed_printing () =
  let t, _ = repl () in
  Alcotest.(check (list string)) "list" [ "val it = [1, 2, 3] : int list" ]
    (eval t "[1, 2, 3]");
  Alcotest.(check (list string)) "bool" [ "val it = true : bool" ]
    (eval t "1 < 2");
  Alcotest.(check (list string)) "nested"
    [ "val it = ([true], \"s\") : bool list * string" ]
    (eval t "([1 < 2], \"s\")");
  let _ = eval t "datatype shape = Dot | Box of int * int" in
  Alcotest.(check (list string)) "datatype constructor"
    [ "val it = Box ((2, 3)) : shape" ]
    (eval t "Box (2, 3)");
  Alcotest.(check (list string)) "function" [ "val it = fn : int -> int" ]
    (eval t "fn x => x + 1")

let test_polymorphic_binding_display () =
  let t, _ = repl () in
  Alcotest.(check (list string)) "polymorphic id"
    [ "val id = fn : 'a -> 'a" ]
    (eval t "fun id x = x")

let test_warnings_surface () =
  let t, _ = repl () in
  let outcome = Interactive.eval t "fun f 0 = 1" in
  Alcotest.(check bool) "nonexhaustive reported" true
    (List.exists
       (fun w ->
         let rec has i =
           i + 13 <= String.length w
           && (String.sub w i 13 = "nonexhaustive" || has (i + 1))
         in
         has 0)
       outcome.Interactive.warnings)

let test_error_isolation () =
  let t, _ = repl () in
  let _ = eval t "val ok = 1" in
  (* a failing input must not corrupt the session *)
  (match Diag.guard (fun () -> eval t "val bad = unbound + 1") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected elaboration error");
  Alcotest.(check (list string)) "session still alive"
    [ "val it = 2 : int" ] (eval t "ok + 1")

let test_exceptions_cross_inputs () =
  let t, _ = repl () in
  let _ = eval t "exception Boom of int" in
  let _ = eval t "fun go () = raise Boom 42" in
  Alcotest.(check (list string)) "caught across inputs"
    [ "val it = 42 : int" ]
    (eval t "(go ()) handle Boom n => n")

let test_print_side_effects () =
  let t, buf = repl () in
  let _ = eval t "val _ = print \"first \"" in
  let _ = eval t "val _ = print \"second\"" in
  Alcotest.(check string) "output accumulated" "first second"
    (Buffer.contents buf)

let test_modules_in_repl () =
  let t, _ = repl () in
  let _ =
    eval t
      "signature Q = sig type t val mk : int -> t end\n\
       structure M :> Q = struct type t = int fun mk n = n end"
  in
  (* opacity holds interactively too *)
  (match Diag.guard (fun () -> eval t "M.mk 3 + 1") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "abstract type must not unify with int");
  let _ = eval t "functor F (X : Q) = struct val v = X.mk 7 end" in
  Alcotest.(check (list string)) "functor applied interactively"
    [ "structure R" ]
    (eval t "structure R = F(M)")

let test_ref_state_persists () =
  let t, _ = repl () in
  let _ = eval t "val counter = ref 0" in
  let _ = eval t "counter := !counter + 1" in
  let _ = eval t "counter := !counter + 1" in
  Alcotest.(check (list string)) "mutable state persists"
    [ "val it = 2 : int" ] (eval t "!counter")

let suite =
  [
    Alcotest.test_case "state accumulates" `Quick test_state_accumulates;
    Alcotest.test_case "shadowing" `Quick test_shadowing;
    Alcotest.test_case "type-directed printing" `Quick
      test_type_directed_printing;
    Alcotest.test_case "polymorphic display" `Quick
      test_polymorphic_binding_display;
    Alcotest.test_case "warnings surface" `Quick test_warnings_surface;
    Alcotest.test_case "error isolation" `Quick test_error_isolation;
    Alcotest.test_case "exceptions across inputs" `Quick
      test_exceptions_cross_inputs;
    Alcotest.test_case "print side effects" `Quick test_print_side_effects;
    Alcotest.test_case "modules in the loop" `Quick test_modules_in_repl;
    Alcotest.test_case "ref state persists" `Quick test_ref_state_persists;
  ]
