(* End-to-end dynamic semantics: parse → elaborate → translate → eval. *)

module Context = Statics.Context
module Basis = Statics.Basis
module Elaborate = Statics.Elaborate
module Types = Statics.Types
module Parser = Lang.Parser
module Value = Dynamics.Value
module Eval = Dynamics.Eval
module Diag = Support.Diag

let run ?(decs = "") src =
  let ctx = Context.create () in
  Basis.register ctx;
  let env = Basis.env () in
  let delta, tdecs =
    if decs = "" then (Types.empty_env, [])
    else Elaborate.elab_decs ctx env (Parser.parse_decs ~file:"pre.sml" decs)
  in
  let env = Types.env_union env delta in
  let texp, _ty = Elaborate.elab_exp ctx env (Parser.parse_exp ~file:"t.sml" src) in
  let code = Translate.tdecs tdecs (Translate.texp texp) in
  let buffer = Buffer.create 64 in
  let rt =
    Eval.runtime ~output:(Buffer.add_string buffer)
      ~imports:Digestkit.Pid.Map.empty ()
  in
  let value = Eval.run rt code in
  (value, Buffer.contents buffer)

let check_int ?decs src expected =
  match run ?decs src with
  | Value.Vint n, _ -> Alcotest.(check int) src expected n
  | v, _ -> Alcotest.fail (src ^ " evaluated to " ^ Value.to_string v)

let check_string ?decs src expected =
  match run ?decs src with
  | Value.Vstring s, _ -> Alcotest.(check string) src expected s
  | v, _ -> Alcotest.fail (src ^ " evaluated to " ^ Value.to_string v)

let check_bool ?decs src expected =
  match run ?decs src with
  | Value.Vcon0 tag, _ -> Alcotest.(check int) src (if expected then 1 else 0) tag
  | v, _ -> Alcotest.fail (src ^ " evaluated to " ^ Value.to_string v)

let check_raises ?decs src exn_name =
  match run ?decs src with
  | exception Eval.Sml_raise (Value.Vexn (id, _)) ->
    Alcotest.(check string) src exn_name (Support.Symbol.name id.Value.exn_name)
  | v, _ -> Alcotest.fail (src ^ " evaluated to " ^ Value.to_string v)

let test_arithmetic () =
  check_int "1 + 2 * 3" 7;
  check_int "10 div 3" 3;
  check_int "10 mod 3" 1;
  check_int "~5 + 2" (-3);
  check_bool "3 < 4" true;
  check_bool "3 >= 4" false;
  check_bool "1 = 1 andalso 2 <> 3" true;
  check_string "\"foo\" ^ \"bar\"" "foobar";
  check_int "size \"hello\"" 5

let test_division_by_zero () =
  check_raises "1 div 0" "Div";
  check_raises "1 mod 0" "Div";
  check_int "(1 div 0) handle Div => 42" 42

let test_closures_and_currying () =
  check_int "let val add = fn a => fn b => a + b in add 2 3 end" 5;
  check_int ~decs:"fun compose f g x = f (g x)"
    "compose (fn x => x * 2) (fn x => x + 1) 10" 22;
  check_int "let val x = 10 val f = fn y => x + y val x = 999 in f 1 end" 11

let test_recursion () =
  check_int ~decs:"fun fact n = if n = 0 then 1 else n * fact (n - 1)"
    "fact 10" 3628800;
  check_int
    ~decs:
      "fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)"
    "fib 20" 6765;
  check_bool
    ~decs:
      "fun even n = if n = 0 then true else odd (n - 1)\n\
       and odd n = if n = 0 then false else even (n - 1)"
    "even 100" true

let test_lists_and_matching () =
  let decs =
    "fun len xs = case xs of nil => 0 | _ :: rest => 1 + len rest\n\
     fun sum xs = case xs of nil => 0 | x :: rest => x + sum rest\n\
     fun append (xs, ys) = case xs of nil => ys | x :: rest => x :: append \
     (rest, ys)\n\
     fun rev xs = case xs of nil => nil | x :: rest => append (rev rest, [x])"
  in
  check_int ~decs "len [1, 2, 3, 4]" 4;
  check_int ~decs "sum [1, 2, 3, 4]" 10;
  check_int ~decs "sum (append ([1, 2], [30, 40]))" 73;
  check_int ~decs "sum (rev [1, 2, 3])" 6;
  check_int ~decs "case rev [1, 2, 3] of x :: _ => x | nil => 0" 3

let test_nested_patterns () =
  let decs =
    "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree\n\
     fun depth t = case t of Leaf => 0 | Node (l, _, r) => 1 + (if depth l > \
     depth r then depth l else depth r)\n\
     fun total t = case t of Leaf => 0 | Node (Leaf, v, Leaf) => v | Node (l, \
     v, r) => total l + v + total r"
  in
  check_int ~decs "depth (Node (Node (Leaf, 1, Leaf), 2, Leaf))" 2;
  check_int ~decs "total (Node (Node (Leaf, 1, Leaf), 2, Node (Leaf, 3, Leaf)))" 6

let test_match_failure () =
  check_raises "case [1] of nil => 0" "Match";
  check_int "(case [1] of nil => 0) handle Match => ~1" (-1)

let test_exceptions () =
  let decs = "exception Odd of int" in
  check_int ~decs "(raise Odd 3) handle Odd n => n * 10" 30;
  check_int ~decs "(raise Odd 3) handle Subscript => 0 | Odd n => n" 3;
  (* uncaught exceptions propagate *)
  check_raises ~decs "raise Odd 1" "Odd";
  (* handler re-raises unmatched packets *)
  check_raises ~decs "(raise Odd 1) handle Subscript => 0" "Odd"

let test_exception_generativity () =
  (* each evaluation of [exception] makes a new identity: the inner E
     does not catch the outer E's packets *)
  let decs =
    "exception E\n\
     val raiser = fn () => raise E\n\
     exception E"
  in
  check_raises ~decs "(raiser ()) handle E => 0" "E"

let test_refs () =
  check_int "let val r = ref 1 in (r := !r + 41; !r) end" 42;
  check_int
    ~decs:
      "val counter = ref 0\n\
       fun tick () = (counter := !counter + 1; !counter)"
    "(tick (); tick (); tick ())" 3

let test_print () =
  let _, out = run "(print \"hello \"; print \"world\"; 0)" in
  Alcotest.(check string) "print output" "hello world" out;
  let _, out2 = run "(print (intToString 42); 0)" in
  Alcotest.(check string) "intToString" "42" out2

let test_structures_runtime () =
  let decs =
    "structure Counter = struct val start = 100 fun next n = n + 1 end\n\
     structure Wrap = struct structure Inner = Counter val base = \
     Counter.next Counter.start end"
  in
  check_int ~decs "Wrap.base" 101;
  check_int ~decs "Wrap.Inner.next 5" 6

let test_ascription_thinning () =
  (* hidden components are dropped from the runtime record, but visible
     ones still work *)
  let decs =
    "signature S = sig val visible : int end\n\
     structure M : S = struct val hidden = 1 val visible = hidden + 1 end"
  in
  check_int ~decs "M.visible" 2

let test_functor_runtime () =
  let decs =
    "signature ORD = sig type elem val less : elem * elem -> bool end\n\
     functor Sort (O : ORD) = struct\n\
       fun insert (x, nil) = [x]\n\
         | insert (x, y :: ys) = if O.less (x, y) then x :: y :: ys else y :: \
     insert (x, ys)\n\
       fun sort nil = nil | sort (x :: xs) = insert (x, sort xs)\n\
     end\n\
     structure IntOrd = struct type elem = int fun less (a, b) = a < b end\n\
     structure S = Sort(IntOrd)\n\
     fun digits xs = let fun go (acc, l) = case l of nil => acc | x :: r => \
     go (acc * 10 + x, r) in go (0, xs) end"
  in
  (* sort [3,1,2] = [1,2,3]; encode positionally to check order *)
  check_int ~decs "digits (S.sort [3, 1, 2])" 123;
  check_int ~decs "digits (S.sort [5, 4, 3, 2, 1])" 12345

let test_figure1_runtime () =
  let decs =
    "signature PARTIAL_ORDER = sig type elem val less : elem * elem -> bool \
     end\n\
     signature SORT = sig type t val sort : t list -> t list end\n\
     functor TopSort (P : PARTIAL_ORDER) : SORT = struct\n\
       type t = P.elem\n\
       fun insert (x, nil) = [x]\n\
         | insert (x, y :: ys) = if P.less (x, y) then x :: y :: ys else y :: \
     insert (x, ys)\n\
       fun sort nil = nil | sort (x :: xs) = insert (x, sort xs)\n\
     end\n\
     structure Factors : PARTIAL_ORDER = struct type elem = int fun less (i, \
     j) = j mod i = 0 end\n\
     structure FSort : SORT = TopSort(Factors)\n\
     fun digits xs = let fun go (acc, l) = case l of nil => acc | x :: r => \
     go (acc * 10 + x, r) in go (0, xs) end"
  in
  (* the result must be a permutation of the input, encoded as digits *)
  match run ~decs "digits (FSort.sort [6, 2, 3])" with
  | Value.Vint n, _ ->
    Alcotest.(check bool)
      "a permutation of 2,3,6 encoded as digits"
      true
      (List.mem n [ 236; 263; 326; 362; 623; 632 ])
  | v, _ -> Alcotest.fail ("figure 1 sort returned " ^ Value.to_string v)

let test_functor_exception_generativity () =
  (* exceptions declared in a functor body are generative per application *)
  let decs =
    "functor F (X : sig end) = struct exception E val throw = fn () => raise \
     E fun catch f = (f (); 0) handle E => 1 end\n\
     structure E0 = struct end\n\
     structure A = F(E0)\n\
     structure B = F(E0)"
  in
  (* A catches its own exception *)
  check_int ~decs "A.catch A.throw" 1;
  (* but B's handler does not catch A's packet *)
  check_raises ~decs "B.catch A.throw" "E"

let test_opaque_runtime () =
  let decs =
    "signature STACK = sig type t val empty : t val push : int * t -> t val \
     top : t -> int end\n\
     structure Stack :> STACK = struct type t = int list val empty = nil fun \
     push (x, s) = x :: s fun top s = case s of x :: _ => x | nil => raise \
     Subscript end"
  in
  check_int ~decs "Stack.top (Stack.push (7, Stack.empty))" 7;
  check_raises ~decs "Stack.top Stack.empty" "Subscript"

let test_string_ops () =
  check_int "stringToInt \"123\"" 123;
  check_int "stringToInt \"~5\"" (-5);
  check_raises "stringToInt \"xyz\"" "Fail";
  check_string "intToString (~7)" "~7"

let test_basis_structures () =
  check_string "Int.toString (21 * 2)" "42";
  check_int "Int.fromString \"17\"" 17;
  check_int "String.size (String.concat (\"ab\", \"cde\"))" 5;
  check_bool "Bool.not (1 > 2)" true;
  (* basis structures survive opening *)
  check_string ~decs:"open Int" "toString 9" "9";
  (* and thread through user modules *)
  check_string
    ~decs:"structure Fmt = struct fun render n = \"<\" ^ Int.toString n ^ \">\" end"
    "Fmt.render 5" "<5>";
  (* static-only basis structures can be aliased and passed to functors
     (their runtime record is synthesized on demand) *)
  check_string ~decs:"structure MyInt = Int" "MyInt.toString 3" "3";
  check_string
    ~decs:
      "functor Render (X : sig val toString : int -> string end) = struct \
       fun go n = X.toString (n * 2) end\n\
       structure R = Render(Int)"
    "R.go 21" "42"

let test_polymorphic_equality () =
  check_bool "[1, 2] = [1, 2]" true;
  check_bool "(1, \"a\") = (1, \"b\")" false;
  check_bool ~decs:"datatype c = R | G | B" "R = R andalso R <> G" true

let test_higher_order () =
  let decs =
    "datatype 'a option = NONE | SOME of 'a\n\
     fun map f xs = case xs of nil => nil | x :: r => f x :: map f r\n\
     fun foldl f acc xs = case xs of nil => acc | x :: r => foldl f (f (acc, \
     x)) r"
  in
  check_int ~decs "foldl (fn (a, x) => a + x) 0 (map (fn x => x * x) [1, 2, 3])" 14;
  (* constructor used as a first-class function *)
  check_int ~decs "case map SOME [1] of SOME x :: _ => x | _ => 0" 1

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "closures and currying" `Quick test_closures_and_currying;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "lists and matching" `Quick test_lists_and_matching;
    Alcotest.test_case "nested patterns" `Quick test_nested_patterns;
    Alcotest.test_case "match failure" `Quick test_match_failure;
    Alcotest.test_case "exceptions" `Quick test_exceptions;
    Alcotest.test_case "exception generativity" `Quick test_exception_generativity;
    Alcotest.test_case "refs" `Quick test_refs;
    Alcotest.test_case "print" `Quick test_print;
    Alcotest.test_case "structures" `Quick test_structures_runtime;
    Alcotest.test_case "ascription thinning" `Quick test_ascription_thinning;
    Alcotest.test_case "functor runtime" `Quick test_functor_runtime;
    Alcotest.test_case "figure 1 runtime" `Quick test_figure1_runtime;
    Alcotest.test_case "functor exception generativity" `Quick
      test_functor_exception_generativity;
    Alcotest.test_case "opaque ascription runtime" `Quick test_opaque_runtime;
    Alcotest.test_case "string primitives" `Quick test_string_ops;
    Alcotest.test_case "basis structures" `Quick test_basis_structures;
    Alcotest.test_case "polymorphic equality" `Quick test_polymorphic_equality;
    Alcotest.test_case "higher-order functions" `Quick test_higher_order;
  ]
