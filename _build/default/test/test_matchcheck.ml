(* Exhaustiveness and redundancy analysis, end to end through the
   elaborator's warning channel. *)

module Parser = Lang.Parser
module Elaborate = Statics.Elaborate
module Context = Statics.Context
module Basis = Statics.Basis

let warnings_of ?(decs = "") src =
  let ctx = Context.create () in
  Basis.register ctx;
  let warnings = ref [] in
  let warn _loc msg = warnings := msg :: !warnings in
  let env = Basis.env () in
  let env =
    if decs = "" then env
    else
      let delta, _ =
        Elaborate.elab_decs ctx env (Parser.parse_decs ~file:"pre.sml" decs)
      in
      Statics.Types.env_union env delta
  in
  ignore (Elaborate.elab_exp ~warn ctx env (Parser.parse_exp ~file:"t.sml" src));
  List.rev !warnings

let has_warning needle warnings =
  List.exists
    (fun w ->
      let rec contains i =
        i + String.length needle <= String.length w
        && (String.equal (String.sub w i (String.length needle)) needle
            || contains (i + 1))
      in
      contains 0)
    warnings

let check_warns ?decs src needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s warns %s" src needle)
    true
    (has_warning needle (warnings_of ?decs src))

let check_clean ?decs src =
  Alcotest.(check (list string)) (src ^ " is clean") [] (warnings_of ?decs src)

let test_exhaustive_bool () =
  check_clean "case 1 < 2 of true => 1 | false => 0";
  check_warns "case 1 < 2 of true => 1" "nonexhaustive"

let test_exhaustive_lists () =
  check_clean "case [1] of nil => 0 | _ :: _ => 1";
  check_warns "case [1] of x :: _ => x" "nonexhaustive";
  check_clean "case [1] of nil => 0 | [x] => x | x :: _ => x"

let test_datatype_spans () =
  let decs = "datatype color = Red | Green | Blue" in
  check_clean ~decs "case Red of Red => 0 | Green => 1 | Blue => 2";
  check_warns ~decs "case Red of Red => 0 | Green => 1" "nonexhaustive";
  check_clean ~decs "case Red of Red => 0 | _ => 9"

let test_integers_open () =
  check_warns "case 3 of 0 => 0 | 1 => 1" "nonexhaustive";
  check_clean "case 3 of 0 => 0 | n => n"

let test_redundancy () =
  check_warns "case 3 of _ => 0 | 1 => 1" "redundant";
  check_warns "case [1] of nil => 0 | x :: _ => x | nil => 9" "redundant";
  let decs = "datatype t = A | B" in
  check_warns ~decs "case A of A => 0 | B => 1 | _ => 2" "redundant"

let test_nested () =
  check_clean
    "case ([1], true) of (nil, _) => 0 | (_ :: _, true) => 1 | (_ :: _, \
     false) => 2";
  check_warns "case ([1], true) of (nil, _) => 0 | (_ :: _, true) => 1"
    "nonexhaustive"

let test_handle_not_flagged () =
  (* handlers are expected to be partial *)
  check_clean "(1 div 0) handle Div => 0";
  (* but a genuinely redundant handler rule is still flagged *)
  check_warns "(1 div 0) handle _ => 0 | Div => 1" "redundant"

let test_binding_exhaustiveness () =
  let ctx = Context.create () in
  Basis.register ctx;
  let warnings = ref [] in
  let warn _loc msg = warnings := msg :: !warnings in
  ignore
    (Elaborate.elab_decs ~warn ctx (Basis.env ())
       (Parser.parse_decs ~file:"t.sml" "val x :: _ = [1, 2]"));
  Alcotest.(check bool) "binding warned" true
    (has_warning "not exhaustive" !warnings);
  let warnings2 = ref [] in
  let warn2 _loc msg = warnings2 := msg :: !warnings2 in
  ignore
    (Elaborate.elab_decs ~warn:warn2 ctx (Basis.env ())
       (Parser.parse_decs ~file:"t.sml" "val (a, b) = (1, 2)"));
  Alcotest.(check (list string)) "tuple binding clean" [] !warnings2

let test_exceptions_open () =
  let decs = "exception E1\nexception E2" in
  (* two different exception constructors: neither redundant *)
  check_clean ~decs "(raise E1) handle E1 => 1 | E2 => 2";
  (* the same constructor twice is redundant *)
  check_warns ~decs "(raise E1) handle E1 => 1 | E1 => 2" "redundant"

let suite =
  [
    Alcotest.test_case "bool exhaustiveness" `Quick test_exhaustive_bool;
    Alcotest.test_case "list exhaustiveness" `Quick test_exhaustive_lists;
    Alcotest.test_case "datatype spans" `Quick test_datatype_spans;
    Alcotest.test_case "integers are open" `Quick test_integers_open;
    Alcotest.test_case "redundancy" `Quick test_redundancy;
    Alcotest.test_case "nested patterns" `Quick test_nested;
    Alcotest.test_case "handlers not flagged" `Quick test_handle_not_flagged;
    Alcotest.test_case "binding exhaustiveness" `Quick
      test_binding_exhaustiveness;
    Alcotest.test_case "exceptions are open" `Quick test_exceptions_open;
  ]
