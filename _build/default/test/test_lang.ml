(* Frontend: lexer, parser, pretty-printer. *)

module Token = Lang.Token
module Lexer = Lang.Lexer
module Parser = Lang.Parser
module Pretty = Lang.Pretty
module Ast = Lang.Ast
module Diag = Support.Diag

let tokens src = List.map fst (Lexer.all ~file:"t.sml" src)

let token_strings src =
  tokens src |> List.map Token.to_string |> String.concat " "

let test_lex_basic () =
  Alcotest.(check string)
    "declaration" "val x = 1 + 2 <eof>"
    (token_strings "val x = 1+2");
  Alcotest.(check string)
    "negative literal" "~3 <eof>" (token_strings "~3");
  Alcotest.(check string)
    "symbolic longest match" ":> : = => -> <eof>"
    (token_strings ":> : = => ->");
  Alcotest.(check string)
    "cons vs colons" ":: : : <eof>" (token_strings ":: : :")

let test_lex_comments () =
  Alcotest.(check string)
    "nested comments skipped" "val x <eof>"
    (token_strings "(* a (* nested *) b *) val (* mid *) x");
  match Diag.guard (fun () -> tokens "(* unterminated") with
  | Error d -> Alcotest.(check bool) "lex phase" true (d.Diag.phase = Diag.Lex)
  | Ok _ -> Alcotest.fail "expected unterminated-comment error"

let test_lex_strings () =
  (match tokens {|"hello\nworld"|} with
  | [ Token.STRING s; Token.EOF ] ->
    Alcotest.(check string) "escape decoded" "hello\nworld" s
  | _ -> Alcotest.fail "bad token stream");
  match tokens {|"\065\066\067"|} with
  | [ Token.STRING s; Token.EOF ] ->
    Alcotest.(check string) "decimal escapes" "ABC" s
  | _ -> Alcotest.fail "bad token stream"

let test_lex_keywords_vs_ids () =
  Alcotest.(check string)
    "keywords recognised" "functor structure signature val <eof>"
    (token_strings "functor structure signature val");
  match tokens "valx functorY" with
  | [ Token.ID "valx"; Token.ID "functorY"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "prefix of keyword must stay an identifier"

let parse_exp src = Parser.parse_exp ~file:"t.sml" src

let roundtrip_exp src =
  (* print(parse src) reparses to the same printed form *)
  let once = Pretty.exp_to_string (parse_exp src) in
  let twice = Pretty.exp_to_string (parse_exp once) in
  Alcotest.(check string) ("roundtrip: " ^ src) once twice

let test_parse_precedence () =
  let shows src expected =
    Alcotest.(check string) src expected (Pretty.exp_to_string (parse_exp src))
  in
  shows "1+2*3" "1 + (2 * 3)";
  shows "1*2+3" "(1 * 2) + 3";
  shows "1+2-3" "(1 + 2) - 3";
  shows "1 :: 2 :: nil" "1 :: (2 :: nil)";
  shows "a = b andalso c = d" "a = b andalso c = d";
  shows "x < y orelse x > y" "x < y orelse x > y";
  shows "f x + g y" "(f x) + (g y)"

let test_parse_if_extends_right () =
  let printed =
    Pretty.exp_to_string (parse_exp "if a then b else c andalso d")
  in
  (* the else branch captures the andalso *)
  Alcotest.(check string) "if right extension" "if a then b else c andalso d"
    printed;
  let e = parse_exp "if a then b else c andalso d" in
  match e.Ast.exp_desc with
  | Ast.Eif (_, _, { Ast.exp_desc = Ast.Eandalso _; _ }) -> ()
  | _ -> Alcotest.fail "else branch should contain the andalso"

let test_parse_case_fn () =
  let e = parse_exp "case xs of nil => 0 | x :: rest => 1 + len rest" in
  (match e.Ast.exp_desc with
  | Ast.Ecase (_, [ _; _ ]) -> ()
  | _ -> Alcotest.fail "expected a two-rule case");
  let f = parse_exp "fn (x, y) => x + y" in
  match f.Ast.exp_desc with
  | Ast.Efn [ { Ast.rule_pat = { Ast.pat_desc = Ast.Ptuple [ _; _ ]; _ }; _ } ]
    -> ()
  | _ -> Alcotest.fail "expected fn over a pair pattern"

let test_parse_decs () =
  let decs =
    Parser.parse_decs ~file:"t.sml"
      "val x = 1\n\
       fun fact n = if n = 0 then 1 else n * fact (n - 1)\n\
       datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree\n\
       exception Bad of string\n\
       type point = int * int"
  in
  Alcotest.(check int) "five declarations" 5 (List.length decs);
  match List.map (fun d -> d.Ast.dec_desc) decs with
  | [ Ast.Dval _; Ast.Dfun _; Ast.Ddatatype _; Ast.Dexception _; Ast.Dtype _ ]
    -> ()
  | _ -> Alcotest.fail "unexpected declaration shapes"

let test_parse_modules () =
  let src =
    "signature ORD = sig type elem val less : elem * elem -> bool end\n\
     structure IntOrd : ORD = struct type elem = int fun less (a, b) = a < b \
     end\n\
     functor Sort (O : ORD) = struct fun min (a, b) = if O.less (a, b) then a \
     else b end\n\
     structure S = Sort(IntOrd)"
  in
  let unit_ = Parser.parse_unit ~file:"m.sml" src in
  Alcotest.(check int) "four declarations" 4 (List.length unit_.Ast.unit_decs);
  match List.map (fun d -> d.Ast.dec_desc) unit_.Ast.unit_decs with
  | [ Ast.Dsignature _; Ast.Dstructure [ (_, Some (Ast.Transparent _), _) ];
      Ast.Dfunctor [ fb ]; Ast.Dstructure [ (_, None, app) ] ] -> (
    Alcotest.(check string) "functor name" "Sort"
      (Support.Symbol.name fb.Ast.fct_name);
    match app.Ast.str_desc with
    | Ast.Sapp (path, _) ->
      Alcotest.(check string) "application head" "Sort"
        (Ast.path_to_string path)
    | _ -> Alcotest.fail "expected functor application")
  | _ -> Alcotest.fail "unexpected module declarations"

let test_parse_opaque_and_where () =
  let src =
    "structure S :> sig type t val x : t end = struct type t = int val x = 3 \
     end\n\
     signature K = sig type t val v : t end where type t = int"
  in
  let unit_ = Parser.parse_unit ~file:"w.sml" src in
  match List.map (fun d -> d.Ast.dec_desc) unit_.Ast.unit_decs with
  | [ Ast.Dstructure [ (_, Some (Ast.Opaque _), _) ];
      Ast.Dsignature [ (_, { Ast.sig_desc = Ast.Gwhere (_, [ ws ]); _ }) ] ] ->
    Alcotest.(check string) "where path" "t" (Ast.path_to_string ws.Ast.ws_path)
  | _ -> Alcotest.fail "unexpected shapes for opaque/where"

let test_parse_figure1 () =
  (* The paper's figure 1, verbatim modulo our ascii syntax. *)
  let src =
    "signature PARTIAL_ORDER = sig type elem val less : elem * elem -> bool \
     end\n\
     signature SORT = sig type t val sort : t list -> t list end\n\
     functor TopSort (P : PARTIAL_ORDER) : SORT = struct type t = P.elem \
     fun sort xs = xs end\n\
     structure Factors : PARTIAL_ORDER = struct type elem = int fun less (i, \
     j) = j mod i = 0 end\n\
     structure FSort : SORT = TopSort(Factors)"
  in
  let unit_ = Parser.parse_unit ~file:"fig1.sml" src in
  Alcotest.(check int) "five declarations" 5 (List.length unit_.Ast.unit_decs)

let test_parse_errors () =
  let fails src =
    match Diag.guard (fun () -> Parser.parse_unit ~file:"e.sml" src) with
    | Error d -> Alcotest.(check bool) src true (d.Diag.phase = Diag.Parse)
    | Ok _ -> Alcotest.fail ("expected parse error: " ^ src)
  in
  fails "val = 3";
  fails "structure = struct end";
  fails "val x = (1,";
  fails "fun f = 3";
  (* clause must have arguments *)
  fails "signature S = sig val x end"

let test_roundtrip_corpus () =
  List.iter roundtrip_exp
    [
      "1 + 2 * 3";
      "let val x = 1 val y = 2 in x + y end";
      "fn x => fn y => x y";
      "case p of (a, b) => a :: b";
      "if a andalso b then [1, 2] else nil";
      "(f x; g y; h z)";
      "#1 (1, \"two\")";
      "raise Fail \"no\"";
      "(f x handle Bad m => m)";
      "op + (1, 2)";
    ]

let qcheck_roundtrip_int_exprs =
  (* Random arithmetic expressions: print-parse-print is stable. *)
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 0 then map string_of_int (0 -- 99)
          else
            frequency
              [
                (1, map string_of_int (0 -- 99));
                ( 2,
                  map2
                    (fun a b -> Printf.sprintf "(%s + %s)" a b)
                    (self (n / 2)) (self (n / 2)) );
                ( 2,
                  map2
                    (fun a b -> Printf.sprintf "(%s * %s)" a b)
                    (self (n / 2)) (self (n / 2)) );
                ( 1,
                  map3
                    (fun a b c ->
                      Printf.sprintf "(if %s < %s then %s else 0)" a b c)
                    (self (n / 3)) (self (n / 3)) (self (n / 3)) );
              ]))
  in
  QCheck.Test.make ~count:100 ~name:"parser: print-parse-print stable"
    (QCheck.make gen) (fun src ->
      let once = Pretty.exp_to_string (parse_exp src) in
      let twice = Pretty.exp_to_string (parse_exp once) in
      String.equal once twice)

let suite =
  [
    Alcotest.test_case "lex basics" `Quick test_lex_basic;
    Alcotest.test_case "lex nested comments" `Quick test_lex_comments;
    Alcotest.test_case "lex string escapes" `Quick test_lex_strings;
    Alcotest.test_case "lex keywords vs identifiers" `Quick
      test_lex_keywords_vs_ids;
    Alcotest.test_case "infix precedence" `Quick test_parse_precedence;
    Alcotest.test_case "if extends right" `Quick test_parse_if_extends_right;
    Alcotest.test_case "case and fn" `Quick test_parse_case_fn;
    Alcotest.test_case "core declarations" `Quick test_parse_decs;
    Alcotest.test_case "module declarations" `Quick test_parse_modules;
    Alcotest.test_case "opaque ascription and where type" `Quick
      test_parse_opaque_and_where;
    Alcotest.test_case "paper figure 1 parses" `Quick test_parse_figure1;
    Alcotest.test_case "syntax errors are reported" `Quick test_parse_errors;
    Alcotest.test_case "pretty/parse roundtrips" `Quick test_roundtrip_corpus;
    QCheck_alcotest.to_alcotest qcheck_roundtrip_int_exprs;
  ]
