(* Elaboration: HM inference, datatypes, modules, signature matching,
   functors — including the paper's figure 1 transparency property. *)

module Context = Statics.Context
module Basis = Statics.Basis
module Elaborate = Statics.Elaborate
module Unify = Statics.Unify
module Types = Statics.Types
module Tyformat = Statics.Tyformat
module Parser = Lang.Parser
module Diag = Support.Diag

let setup () =
  let ctx = Context.create () in
  Basis.register ctx;
  (ctx, Basis.env ())

let infer ?(decs = "") src =
  let ctx, env = setup () in
  let env =
    if decs = "" then env
    else
      let delta, _ =
        Elaborate.elab_decs ctx env (Parser.parse_decs ~file:"pre.sml" decs)
      in
      Types.env_union env delta
  in
  let _texp, ty = Elaborate.elab_exp ctx env (Parser.parse_exp ~file:"t.sml" src) in
  Tyformat.ty_to_string ctx ty

let check_ty ?decs src expected =
  Alcotest.(check string) src expected (infer ?decs src)

let check_fails ?(decs = "") src =
  let ctx, env = setup () in
  let result =
    Diag.guard (fun () ->
        let env =
          if decs = "" then env
          else
            let delta, _ =
              Elaborate.elab_decs ctx env (Parser.parse_decs ~file:"pre.sml" decs)
            in
            Types.env_union env delta
        in
        Elaborate.elab_exp ctx env (Parser.parse_exp ~file:"t.sml" src))
  in
  match result with
  | Error d ->
    Alcotest.(check bool)
      ("fails in elaboration: " ^ src)
      true
      (d.Diag.phase = Diag.Elaborate)
  | Ok _ -> Alcotest.fail ("expected type error: " ^ src)

let check_decs_fail src =
  let ctx, env = setup () in
  match
    Diag.guard (fun () ->
        Elaborate.elab_decs ctx env (Parser.parse_decs ~file:"t.sml" src))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail ("expected elaboration error: " ^ src)

let test_core_inference () =
  check_ty "1 + 2" "int";
  check_ty "\"a\" ^ \"b\"" "string";
  (let printed = infer "fn x => x" in
   match String.index_opt printed '-' with
   | Some i ->
     let lhs = String.trim (String.sub printed 0 i) in
     let rhs =
       String.trim (String.sub printed (i + 2) (String.length printed - i - 2))
     in
     Alcotest.(check string) "identity: domain = codomain" lhs rhs
   | None -> Alcotest.fail "identity should have an arrow type");
  check_ty "(1, \"two\", true)" "int * string * bool";
  check_ty "[1, 2, 3]" "int list";
  check_ty "if 1 < 2 then \"y\" else \"n\"" "string";
  check_ty "let val id = fn x => x in (id 1, id \"s\") end" "int * string"

let test_inference_failures () =
  check_fails "1 + \"two\"";
  check_fails "if 1 then 2 else 3";
  check_fails "[1, \"two\"]";
  check_fails "(fn x => x + 1) \"s\"";
  check_fails "x";
  (* unbound *)
  check_fails "case 1 of true => 2 | false => 3"

let test_value_restriction () =
  (* expansive binding: no generalization, so using at two types fails *)
  check_fails
    ~decs:"val r = ref nil"
    "(r := [1]; r := [\"s\"]; 0)";
  (* non-expansive: fine *)
  check_ty ~decs:"val id = fn x => x" "(id 1, id \"s\")" "int * string"

let test_datatypes () =
  let decs =
    "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree\n\
     fun size t = case t of Leaf => 0 | Node (l, _, r) => 1 + size l + size r"
  in
  check_ty ~decs "size (Node (Leaf, 7, Leaf))" "int";
  check_ty ~decs "Node (Leaf, \"x\", Leaf)" "string tree";
  check_fails ~decs "Node (Leaf, 1, Node (Leaf, \"s\", Leaf))"

let test_exceptions () =
  let decs = "exception Overflow of int" in
  (* raise has a free result type; just confirm it elaborates *)
  ignore (infer ~decs "raise Overflow 3");
  check_ty ~decs "(raise Overflow 3) handle Overflow n => n | _ => 0" "int";
  check_fails ~decs "raise 3"

let test_recursion () =
  check_ty
    ~decs:"fun fact n = if n = 0 then 1 else n * fact (n - 1)"
    "fact 5" "int";
  check_ty
    ~decs:
      "fun even n = if n = 0 then true else odd (n - 1)\n\
       and odd n = if n = 0 then false else even (n - 1)"
    "even 10" "bool"

let test_structures () =
  let decs =
    "structure A = struct val x = 1 val y = \"s\" end\n\
     structure B = struct structure Inner = A val z = A.x + 1 end"
  in
  check_ty ~decs "A.x + B.z" "int";
  check_ty ~decs "B.Inner.y" "string";
  check_fails ~decs "A.missing"

let test_transparent_ascription () =
  let decs =
    "signature S = sig type t val x : t end\n\
     structure M : S = struct type t = int val x = 3 val hidden = 4 end"
  in
  (* transparent: t is known to be int *)
  check_ty ~decs "M.x + 1" "int";
  (* but hidden components are gone *)
  check_fails ~decs "M.hidden"

let test_opaque_ascription () =
  let decs =
    "signature S = sig type t val x : t val get : t -> int end\n\
     structure M :> S = struct type t = int val x = 3 fun get n = n end"
  in
  (* opaque: t is abstract *)
  check_fails ~decs "M.x + 1";
  check_ty ~decs "M.get M.x" "int"

let test_signature_mismatch () =
  check_decs_fail
    "signature S = sig val x : int end\n\
     structure M : S = struct val x = \"s\" end";
  check_decs_fail
    "signature S = sig type t val x : t end\n\
     structure M : S = struct val x = 3 end";
  check_decs_fail
    "signature S = sig val f : 'a -> 'a end\n\
     structure M : S = struct fun f x = x + 1 end"

let test_where_type () =
  let decs =
    "signature S = sig type t val x : t end\n\
     signature SI = S where type t = int\n\
     structure M : SI = struct type t = int val x = 3 end"
  in
  check_ty ~decs "M.x + 1" "int"

let test_functor_basic () =
  let decs =
    "signature ORD = sig type elem val less : elem * elem -> bool end\n\
     functor MinOf (O : ORD) = struct fun min (a, b) = if O.less (a, b) then \
     a else b end\n\
     structure IntOrd = struct type elem = int fun less (a, b) = a < b end\n\
     structure M = MinOf(IntOrd)"
  in
  (* transparent propagation through the functor: elem = int *)
  check_ty ~decs "M.min (1, 2)" "int"

let test_figure1_transparency () =
  (* The paper's figure 1: FSort.t = int propagates through TopSort. *)
  let decs =
    "signature PARTIAL_ORDER = sig type elem val less : elem * elem -> bool \
     end\n\
     signature SORT = sig type t val sort : t list -> t list end\n\
     functor TopSort (P : PARTIAL_ORDER) : SORT = struct type t = P.elem fun \
     sort xs = xs end\n\
     structure Factors : PARTIAL_ORDER = struct type elem = int fun less (i, \
     j) = j mod i = 0 end\n\
     structure FSort : SORT = TopSort(Factors)"
  in
  (* As the paper says: FSort.t is the same as int, and that is visible. *)
  check_ty ~decs "FSort.sort [6, 2, 3]" "int list"

let test_functor_generativity () =
  (* opaque result: two applications yield distinct abstract types *)
  let decs =
    "signature S = sig type t val mk : int -> t val un : t -> int end\n\
     functor F (X : sig end) :> S = struct type t = int fun mk n = n fun un \
     n = n end\n\
     structure E = struct end\n\
     structure A = F(E)\n\
     structure B = F(E)"
  in
  check_ty ~decs "A.un (A.mk 3)" "int";
  (* mixing A.t and B.t must fail *)
  check_fails ~decs "B.un (A.mk 3)"

let test_datatype_through_functor () =
  let decs =
    "functor F (X : sig type t end) = struct datatype box = Box of X.t fun \
     unbox (Box v) = v end\n\
     structure A = F(struct type t = int end)"
  in
  check_ty ~decs "A.unbox (A.Box 3)" "int"

let test_open () =
  let decs =
    "structure A = struct val x = 1 datatype color = Red | Blue end\n\
     open A"
  in
  check_ty ~decs "x + 1" "int";
  check_ty ~decs "case Red of Red => 0 | Blue => 1" "int"

let test_local () =
  let decs =
    "local val helper = 10 in val visible = helper + 1 end"
  in
  check_ty ~decs "visible" "int";
  check_fails ~decs "helper"

let test_unit_discipline () =
  let ctx, env = setup () in
  let unit_ =
    Parser.parse_unit ~file:"u.sml" "val x = 3"
  in
  (match
     Diag.guard (fun () -> Elaborate.elab_compilation_unit ctx env unit_)
   with
  | Error d ->
    Alcotest.(check bool) "unit discipline enforced" true
      (d.Diag.phase = Diag.Elaborate)
  | Ok _ -> Alcotest.fail "top-level val must be rejected in units");
  let ok = Parser.parse_unit ~file:"u.sml" "structure A = struct val x = 3 end" in
  match Diag.guard (fun () -> Elaborate.elab_compilation_unit ctx env ok) with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Diag.to_string d)

let test_nested_functors () =
  (* higher-order composition expressed through nesting structures *)
  let decs =
    "signature T = sig type t val v : t end\n\
     functor Pair (X : T) = struct structure Fst = X type t = X.t * X.t val \
     v = (X.v, X.v) end\n\
     structure I = struct type t = int val v = 1 end\n\
     structure P = Pair(I)\n\
     structure PP = Pair(P)"
  in
  check_ty ~decs "PP.v" "(int * int) * (int * int)";
  check_ty ~decs "P.Fst.v + 1" "int"

let test_include () =
  let decs =
    "signature HAS_T = sig type t end\n\
     signature HAS_BOTH = sig include HAS_T val x : t end\n\
     structure M : HAS_BOTH = struct type t = int val x = 1 end"
  in
  check_ty ~decs "M.x + 1" "int";
  (* include of a named signature instantiates a fresh copy: two
     structures matching HAS_BOTH don't share t *)
  let decs2 =
    decs
    ^ "\nstructure N :> HAS_BOTH = struct type t = string val x = \"s\" end"
  in
  check_fails ~decs:decs2 "M.x = N.x"

let test_where_type_parameterized () =
  let decs =
    "signature COLL = sig type 'a t val single : 'a -> 'a t end\n\
     signature LISTCOLL = COLL where type 'a t = 'a list\n\
     structure L : LISTCOLL = struct type 'a t = 'a list fun single x = [x] \
     end"
  in
  check_ty ~decs "L.single 3" "int list";
  (* manifest equality is usable by clients *)
  check_ty ~decs "case L.single 3 of x :: _ => x | nil => 0" "int"

let test_slet () =
  let decs =
    "structure S = let val hidden = 40 in struct val visible = hidden + 2 \
     end end"
  in
  check_ty ~decs "S.visible" "int";
  check_fails ~decs "hidden"

let test_local_structures () =
  let decs =
    "local structure Helper = struct val h = 5 end in structure Public = \
     struct val p = Helper.h * 2 end end"
  in
  check_ty ~decs "Public.p" "int";
  check_fails ~decs "Helper.h"

let test_opaque_functor_ascription () =
  let decs =
    "signature S = sig type t val mk : int -> t end\n\
     functor F (X : sig end) :> S = struct type t = int fun mk n = n end\n\
     structure A = F(struct end)"
  in
  check_ty ~decs "A.mk 3" "t";
  check_fails ~decs "A.mk 3 + 1"

let test_signature_reuse_across_structures () =
  (* one named signature, two opaque structures: distinct abstract types *)
  let decs =
    "signature S = sig type t val mk : int -> t val un : t -> int end\n\
     structure A :> S = struct type t = int fun mk n = n fun un n = n end\n\
     structure B :> S = struct type t = int fun mk n = n + 1 fun un n = n - \
     1 end"
  in
  check_ty ~decs "A.un (A.mk 1) + B.un (B.mk 1)" "int";
  check_fails ~decs "A.un (B.mk 1)"

let test_functor_result_where () =
  let decs =
    "signature S = sig type t val v : t end\n\
     functor F (X : sig val n : int end) : S where type t = int = struct \
     type t = int val v = X.n end\n\
     structure R = F(struct val n = 9 end)"
  in
  check_ty ~decs "R.v + 1" "int"

let suite =
  [
    Alcotest.test_case "include spec" `Quick test_include;
    Alcotest.test_case "where type, parameterized" `Quick
      test_where_type_parameterized;
    Alcotest.test_case "let structure expressions" `Quick test_slet;
    Alcotest.test_case "local structures" `Quick test_local_structures;
    Alcotest.test_case "opaque functor ascription" `Quick
      test_opaque_functor_ascription;
    Alcotest.test_case "signature reuse, distinct abstraction" `Quick
      test_signature_reuse_across_structures;
    Alcotest.test_case "functor result where type" `Quick
      test_functor_result_where;
    Alcotest.test_case "core inference" `Quick test_core_inference;
    Alcotest.test_case "inference failures" `Quick test_inference_failures;
    Alcotest.test_case "value restriction" `Quick test_value_restriction;
    Alcotest.test_case "datatypes" `Quick test_datatypes;
    Alcotest.test_case "exceptions" `Quick test_exceptions;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "structures and paths" `Quick test_structures;
    Alcotest.test_case "transparent ascription" `Quick
      test_transparent_ascription;
    Alcotest.test_case "opaque ascription" `Quick test_opaque_ascription;
    Alcotest.test_case "signature mismatches" `Quick test_signature_mismatch;
    Alcotest.test_case "where type" `Quick test_where_type;
    Alcotest.test_case "functor basics" `Quick test_functor_basic;
    Alcotest.test_case "figure 1 transparency" `Quick
      test_figure1_transparency;
    Alcotest.test_case "functor generativity" `Quick test_functor_generativity;
    Alcotest.test_case "datatype through functor" `Quick
      test_datatype_through_functor;
    Alcotest.test_case "open" `Quick test_open;
    Alcotest.test_case "local" `Quick test_local;
    Alcotest.test_case "unit discipline" `Quick test_unit_discipline;
    Alcotest.test_case "nested functors" `Quick test_nested_functors;
  ]
