(* Synthetic workload generator: generated projects must compile, and
   the edit kinds must have the interface behaviour the benches rely
   on. *)

module Gen = Workload.Gen
module Driver = Irm.Driver
module Pid = Digestkit.Pid

let build_fresh topology =
  let fs = Vfs.memory () in
  let project = Gen.create fs topology Gen.default_profile in
  let mgr = Driver.create fs in
  let stats =
    Driver.build mgr ~policy:Driver.Cutoff ~sources:(Gen.sources project)
  in
  (fs, project, mgr, stats)

let test_topologies_compile () =
  List.iter
    (fun (label, topology, expected_units) ->
      let _, project, _, stats = build_fresh topology in
      Alcotest.(check int) (label ^ ": unit count") expected_units
        (Gen.size project);
      Alcotest.(check int)
        (label ^ ": all compiled")
        expected_units
        (List.length stats.Driver.st_recompiled))
    [
      ("chain", Gen.Chain 6, 6);
      ("fanout", Gen.Fanout 5, 6);
      ("diamond", Gen.Diamond 3, 8);
      ("tree", Gen.Binary_tree 3, 7);
      ("random", Gen.Random_dag { units = 10; max_deps = 3; seed = 42 }, 10);
    ]

let test_impl_edit_preserves_interface () =
  let fs, project, mgr, _ = build_fresh (Gen.Chain 4) in
  ignore fs;
  let victim = Gen.base_file project in
  let before = (Driver.unit_of mgr victim).Pickle.Binfile.uf_static_pid in
  Gen.edit project victim Gen.Impl_change;
  let stats =
    Driver.build mgr ~policy:Driver.Cutoff ~sources:(Gen.sources project)
  in
  Alcotest.(check int) "only the victim recompiled" 1
    (List.length stats.Driver.st_recompiled);
  let after = (Driver.unit_of mgr victim).Pickle.Binfile.uf_static_pid in
  Alcotest.(check bool) "interface pid preserved" true (Pid.equal before after)

let test_iface_edit_changes_interface () =
  let _, project, mgr, _ = build_fresh (Gen.Chain 4) in
  let victim = Gen.base_file project in
  let before = (Driver.unit_of mgr victim).Pickle.Binfile.uf_static_pid in
  Gen.edit project victim Gen.Iface_change;
  let stats =
    Driver.build mgr ~policy:Driver.Cutoff ~sources:(Gen.sources project)
  in
  let after = (Driver.unit_of mgr victim).Pickle.Binfile.uf_static_pid in
  Alcotest.(check bool) "interface pid changed" false (Pid.equal before after);
  (* the direct dependent recompiles, but since *its* interface is
     unchanged the cascade stops there: 2 units, not the whole chain *)
  Alcotest.(check int) "victim + direct dependent" 2
    (List.length stats.Driver.st_recompiled)

let test_touch_is_interface_neutral () =
  let _, project, mgr, _ = build_fresh (Gen.Diamond 2) in
  let victim = Gen.middle_file project in
  Gen.edit project victim Gen.Touch;
  let stats =
    Driver.build mgr ~policy:Driver.Cutoff ~sources:(Gen.sources project)
  in
  Alcotest.(check (list string)) "only the touched unit" [ victim ]
    stats.Driver.st_recompiled

let test_deterministic_random_dag () =
  let gen seed =
    let fs = Vfs.memory () in
    let p =
      Gen.create fs
        (Gen.Random_dag { units = 8; max_deps = 2; seed })
        Gen.default_profile
    in
    List.map (fun f -> Option.get (fs.Vfs.fs_read f)) (Gen.sources p)
  in
  Alcotest.(check (list string)) "same seed, same project" (gen 7) (gen 7);
  Alcotest.(check bool) "different seed, different project" false
    (gen 7 = gen 8)

let test_runs_after_build () =
  let _, project, mgr, _ = build_fresh (Gen.Diamond 2) in
  (* execution should succeed and produce one export per unit *)
  let dynenv = Driver.run mgr ~sources:(Gen.sources project) in
  Alcotest.(check int) "one export per unit" (Gen.size project)
    (Digestkit.Pid.Map.cardinal dynenv)

let suite =
  [
    Alcotest.test_case "topologies compile" `Quick test_topologies_compile;
    Alcotest.test_case "impl edit preserves interface" `Quick
      test_impl_edit_preserves_interface;
    Alcotest.test_case "iface edit changes interface" `Quick
      test_iface_edit_changes_interface;
    Alcotest.test_case "touch is interface-neutral" `Quick
      test_touch_is_interface_neutral;
    Alcotest.test_case "random dag deterministic" `Quick
      test_deterministic_random_dag;
    Alcotest.test_case "generated projects run" `Quick test_runs_after_build;
  ]
