(* The Incremental Recompilation Manager: dependency analysis, the two
   build policies, and the cutoff-vs-timestamp behaviour the paper's
   evaluation is about. *)

module Driver = Irm.Driver
module Group = Irm.Group
module Scan = Depend.Scan
module Depgraph = Depend.Depgraph
module Value = Dynamics.Value
module Pid = Digestkit.Pid
module Diag = Support.Diag
module Symbol = Support.Symbol

(* A three-unit chain: base <- mid <- top *)
let base_src =
  "structure Base = struct val origin = 10 fun scale n = n * origin end"

let mid_src =
  "structure Mid = struct val v = Base.scale 2 end"

let top_src = "structure Top = struct val result = Mid.v + Base.origin end"

let setup sources =
  let fs = Vfs.memory () in
  List.iter (fun (path, src) -> fs.Vfs.fs_write path src) sources;
  (fs, Driver.create fs)

let chain () =
  setup [ ("base.sml", base_src); ("mid.sml", mid_src); ("top.sml", top_src) ]

let chain_sources = [ "top.sml"; "base.sml"; "mid.sml" ] (* unordered! *)

let names = List.map Filename.basename

let test_scan () =
  let summary = Scan.scan_source ~file:"m.sml" mid_src in
  Alcotest.(check (list string))
    "defines" [ "Mid" ]
    (List.map Symbol.name (Symbol.Set.elements summary.Scan.defines));
  Alcotest.(check (list string))
    "refers" [ "Base" ]
    (List.map Symbol.name (Symbol.Set.elements summary.Scan.refers))

let test_scan_ignores_locals () =
  let src =
    "structure A = struct\n\
     structure Inner = struct val x = 1 end\n\
     val y = Inner.x + External.z\n\
     end\n\
     functor F (Param : sig val v : int end) = struct val w = Param.v + \
     Other.k end"
  in
  let summary = Scan.scan_source ~file:"a.sml" src in
  Alcotest.(check (list string))
    "only free roots" [ "External"; "Other" ]
    (List.map Symbol.name (Symbol.Set.elements summary.Scan.refers))

let test_topological_order () =
  let _fs, mgr = chain () in
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  Alcotest.(check (list string))
    "dependencies first"
    [ "base.sml"; "mid.sml"; "top.sml" ]
    stats.Driver.st_order

let test_initial_build_compiles_all () =
  let _fs, mgr = chain () in
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  Alcotest.(check int) "all compiled" 3 (List.length stats.Driver.st_recompiled);
  Alcotest.(check int) "none loaded" 0 (List.length stats.Driver.st_loaded)

let test_null_build_loads_all () =
  let _fs, mgr = chain () in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  Alcotest.(check int) "nothing recompiled" 0
    (List.length stats.Driver.st_recompiled);
  Alcotest.(check int) "all loaded" 3 (List.length stats.Driver.st_loaded)

let test_timestamp_cascades_on_touch () =
  let fs, mgr = chain () in
  let _ = Driver.build mgr ~policy:Driver.Timestamp ~sources:chain_sources in
  Vfs.touch fs "base.sml";
  let stats = Driver.build mgr ~policy:Driver.Timestamp ~sources:chain_sources in
  (* classical make recompiles the whole cone *)
  Alcotest.(check (list string))
    "cascade" [ "base.sml"; "mid.sml"; "top.sml" ]
    (names stats.Driver.st_recompiled)

let test_cutoff_stops_cascade_on_touch () =
  let fs, mgr = chain () in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  Vfs.touch fs "base.sml";
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  (* the interface pid is unchanged: only the touched unit recompiles *)
  Alcotest.(check (list string))
    "no cascade" [ "base.sml" ]
    (names stats.Driver.st_recompiled);
  Alcotest.(check (list string))
    "cutoff recorded" [ "base.sml" ]
    (names stats.Driver.st_cutoff_hits)

let test_cutoff_stops_cascade_on_impl_change () =
  let fs, mgr = chain () in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  (* change the implementation but not the interface *)
  fs.Vfs.fs_write "base.sml"
    "structure Base = struct val origin = 99 fun scale n = n + n * origin end";
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  Alcotest.(check (list string))
    "only base recompiled" [ "base.sml" ]
    (names stats.Driver.st_recompiled);
  (* and execution picks up the *new* behaviour through old bins *)
  let dynenv = Driver.run mgr ~sources:chain_sources in
  ignore dynenv

let test_interface_change_recompiles_cone () =
  let fs, mgr = chain () in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  (* change Base's interface: origin becomes a string *)
  fs.Vfs.fs_write "base.sml"
    "structure Base = struct val origin = 10 val extra = 1 fun scale n = n * \
     origin end";
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  Alcotest.(check (list string))
    "cone recompiled" [ "base.sml"; "mid.sml"; "top.sml" ]
    (names stats.Driver.st_recompiled)

let test_interface_change_mid_cone_only () =
  (* editing the middle of the chain never touches the base *)
  let fs, mgr = chain () in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  fs.Vfs.fs_write "mid.sml"
    "structure Mid = struct val v = Base.scale 3 val extra = 0 end";
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  Alcotest.(check (list string))
    "mid and top only" [ "mid.sml"; "top.sml" ]
    (names stats.Driver.st_recompiled)

let test_diamond_topology () =
  (* base <- left, right <- join: an interface-preserving edit to left
     recompiles only left under cutoff; timestamp also rebuilds join *)
  let sources =
    [
      ("base.sml", "structure Base = struct val b = 1 end");
      ("left.sml", "structure Left = struct val l = Base.b + 1 end");
      ("right.sml", "structure Right = struct val r = Base.b + 2 end");
      ( "join.sml",
        "structure Join = struct val j = Left.l + Right.r end" );
    ]
  in
  let files = List.map fst sources in
  let fs, mgr = setup sources in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources:files in
  fs.Vfs.fs_write "left.sml" "structure Left = struct val l = Base.b + 100 end";
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources:files in
  Alcotest.(check (list string))
    "cutoff: left only" [ "left.sml" ]
    (names stats.Driver.st_recompiled);
  (* same edit under timestamp: left and join *)
  let fs2, mgr2 = setup sources in
  let _ = Driver.build mgr2 ~policy:Driver.Timestamp ~sources:files in
  fs2.Vfs.fs_write "left.sml"
    "structure Left = struct val l = Base.b + 100 end";
  let stats2 = Driver.build mgr2 ~policy:Driver.Timestamp ~sources:files in
  Alcotest.(check (list string))
    "timestamp: left and join" [ "left.sml"; "join.sml" ]
    (names stats2.Driver.st_recompiled)

let test_cutoff_build_equals_scratch_build () =
  (* soundness: after incremental builds, bins carry the same interface
     pids as a from-scratch build *)
  let fs, mgr = chain () in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  fs.Vfs.fs_write "base.sml"
    "structure Base = struct val origin = 5 fun scale n = n * origin * 2 end";
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  let incremental =
    List.map
      (fun f -> (Driver.unit_of mgr f).Pickle.Binfile.uf_static_pid)
      [ "base.sml"; "mid.sml"; "top.sml" ]
  in
  (* scratch *)
  let fs2 = Vfs.memory () in
  fs2.Vfs.fs_write "base.sml"
    "structure Base = struct val origin = 5 fun scale n = n * origin * 2 end";
  fs2.Vfs.fs_write "mid.sml" mid_src;
  fs2.Vfs.fs_write "top.sml" top_src;
  let mgr2 = Driver.create fs2 in
  let _ = Driver.build mgr2 ~policy:Driver.Cutoff ~sources:chain_sources in
  let scratch =
    List.map
      (fun f -> (Driver.unit_of mgr2 f).Pickle.Binfile.uf_static_pid)
      [ "base.sml"; "mid.sml"; "top.sml" ]
  in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "incremental = scratch interface" true (Pid.equal a b))
    incremental scratch

let test_execution_after_build () =
  let _fs, mgr = chain () in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  let dynenv = Driver.run mgr ~sources:chain_sources in
  let top = Driver.unit_of mgr "top.sml" in
  let _, pid =
    List.hd top.Pickle.Binfile.uf_codeunit.Link.Codeunit.cu_exports
  in
  match Pid.Map.find pid dynenv with
  | Value.Vrecord fields -> (
    match Symbol.Map.find (Symbol.intern "result") fields with
    | Value.Vint n -> Alcotest.(check int) "Top.result" 30 n
    | v -> Alcotest.fail (Value.to_string v))
  | v -> Alcotest.fail (Value.to_string v)

let test_cycle_detection () =
  let fs, mgr =
    setup
      [
        ("a.sml", "structure A = struct val x = B.y end");
        ("b.sml", "structure B = struct val y = A.x end");
      ]
  in
  ignore fs;
  match
    Diag.guard (fun () ->
        Driver.build mgr ~policy:Driver.Cutoff ~sources:[ "a.sml"; "b.sml" ])
  with
  | Error d ->
    Alcotest.(check bool) "manager error" true (d.Diag.phase = Diag.Manager)
  | Ok _ -> Alcotest.fail "cycle must be reported"

let test_duplicate_module_detection () =
  let _fs, mgr =
    setup
      [
        ("a.sml", "structure Dup = struct val x = 1 end");
        ("b.sml", "structure Dup = struct val x = 2 end");
      ]
  in
  match
    Diag.guard (fun () ->
        Driver.build mgr ~policy:Driver.Cutoff ~sources:[ "a.sml"; "b.sml" ])
  with
  | Error d ->
    Alcotest.(check bool) "manager error" true (d.Diag.phase = Diag.Manager)
  | Ok _ -> Alcotest.fail "duplicate module must be reported"

let test_corrupt_bin_forces_recompile () =
  let fs, mgr = chain () in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  (* damage mid's bin; the next build must recompile it, not crash *)
  (match fs.Vfs.fs_read "mid.sml.bin" with
  | Some bytes ->
    fs.Vfs.fs_write "mid.sml.bin" (String.sub bytes 0 (String.length bytes / 2))
  | None -> Alcotest.fail "bin missing");
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources:chain_sources in
  Alcotest.(check (list string))
    "mid recompiled" [ "mid.sml" ]
    (names stats.Driver.st_recompiled)

let test_group_files () =
  Alcotest.(check (list string))
    "parse"
    [ "a.sml"; "b.sml" ]
    (Group.parse "# project\n a.sml \n\nb.sml # main\n");
  let fs = Vfs.memory () in
  fs.Vfs.fs_write "sources.cm" "x.sml\ny.sml\n";
  Alcotest.(check (list string))
    "load" [ "x.sml"; "y.sml" ] (Group.load fs "sources.cm")

let test_functor_across_units () =
  (* the paper's central scenario: a functor in one unit, applied in
     another, with cutoff working across the boundary *)
  let sources =
    [
      ( "sig.sml",
        "signature ORD = sig type elem val less : elem * elem -> bool end" );
      ( "sort.sml",
        "functor Sort (O : ORD) = struct\n\
         fun insert (x, nil) = [x]\n\
        \  | insert (x, y :: ys) = if O.less (x, y) then x :: y :: ys else y \
         :: insert (x, ys)\n\
         fun sort nil = nil | sort (x :: xs) = insert (x, sort xs)\n\
         end" );
      ( "intord.sml",
        "structure IntOrd = struct type elem = int fun less (a, b) = a < b end"
      );
      ( "main.sml",
        "structure Main = struct\n\
         structure S = Sort(IntOrd)\n\
         fun digits xs = let fun go (acc, l) = case l of nil => acc | x :: r \
         => go (acc * 10 + x, r) in go (0, xs) end\n\
         val answer = digits (S.sort [3, 1, 2])\n\
         end" );
    ]
  in
  let files = List.map fst sources in
  let fs, mgr = setup sources in
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources:files in
  Alcotest.(check int) "all four compiled" 4
    (List.length stats.Driver.st_recompiled);
  let dynenv = Driver.run mgr ~sources:files in
  let main = Driver.unit_of mgr "main.sml" in
  let _, pid =
    List.hd main.Pickle.Binfile.uf_codeunit.Link.Codeunit.cu_exports
  in
  (match Pid.Map.find pid dynenv with
  | Value.Vrecord fields -> (
    match Symbol.Map.find (Symbol.intern "answer") fields with
    | Value.Vint n -> Alcotest.(check int) "sorted digits" 123 n
    | v -> Alcotest.fail (Value.to_string v))
  | v -> Alcotest.fail (Value.to_string v));
  (* interface-preserving change to the functor's implementation:
     cutoff recompiles only sort.sml *)
  fs.Vfs.fs_write "sort.sml"
    "functor Sort (O : ORD) = struct\n\
     fun insert (x, nil) = x :: nil\n\
    \  | insert (x, y :: ys) = if O.less (x, y) then x :: y :: ys else y :: \
     insert (x, ys)\n\
     fun sort nil = nil | sort (x :: xs) = insert (x, sort xs)\n\
     end";
  let stats2 = Driver.build mgr ~policy:Driver.Cutoff ~sources:files in
  Alcotest.(check (list string))
    "only the functor's unit" [ "sort.sml" ]
    (names stats2.Driver.st_recompiled)

(* A unit exporting two independent modules, with two clients that each
   reference only one of them. *)
let multi_sources =
  [
    ( "multi.sml",
      "structure Alpha = struct val a = 1 end\n\
       structure Beta = struct val b = 2 end" );
    ("usea.sml", "structure UseA = struct val v = Alpha.a end");
    ("useb.sml", "structure UseB = struct val v = Beta.b end");
  ]

let multi_files = List.map fst multi_sources

let test_selective_skips_sibling_change () =
  let fs, mgr = setup multi_sources in
  let _ = Driver.build mgr ~policy:Driver.Selective ~sources:multi_files in
  (* change Beta's interface; Alpha is untouched *)
  fs.Vfs.fs_write "multi.sml"
    "structure Alpha = struct val a = 1 end\n\
     structure Beta = struct val b = 2 val extra = 3 end";
  let stats = Driver.build mgr ~policy:Driver.Selective ~sources:multi_files in
  (* selective: only multi and Beta's client recompile, Alpha's client
     survives *)
  Alcotest.(check (list string))
    "selective spares Alpha's client"
    [ "multi.sml"; "useb.sml" ]
    (names stats.Driver.st_recompiled);
  (* cutoff, in contrast, rebuilds both clients *)
  let fs2, mgr2 = setup multi_sources in
  let _ = Driver.build mgr2 ~policy:Driver.Cutoff ~sources:multi_files in
  fs2.Vfs.fs_write "multi.sml"
    "structure Alpha = struct val a = 1 end\n\
     structure Beta = struct val b = 2 val extra = 3 end";
  let stats2 = Driver.build mgr2 ~policy:Driver.Cutoff ~sources:multi_files in
  Alcotest.(check int) "cutoff rebuilds all three" 3
    (List.length stats2.Driver.st_recompiled)

let test_selective_skip_is_sound_in_fresh_session () =
  (* the hard case: after a selective skip, a *new* manager (fresh
     context, nothing cached) must still load, link, compile against,
     and execute the skipped bin *)
  let fs, mgr = setup multi_sources in
  let _ = Driver.build mgr ~policy:Driver.Selective ~sources:multi_files in
  fs.Vfs.fs_write "multi.sml"
    "structure Alpha = struct val a = 1 end\n\
     structure Beta = struct val b = 20 val extra = 3 end";
  let _ = Driver.build mgr ~policy:Driver.Selective ~sources:multi_files in
  (* fresh manager over the same file system: usea.sml.bin is stale by
     unit pid but valid by per-binding pids *)
  let mgr2 = Driver.create fs in
  let stats = Driver.build mgr2 ~policy:Driver.Selective ~sources:multi_files in
  Alcotest.(check int) "fresh session: nothing recompiled" 0
    (List.length stats.Driver.st_recompiled);
  (* execution still works and sees the *new* Beta *)
  let dynenv = Driver.run mgr2 ~sources:multi_files in
  let useb = Driver.unit_of mgr2 "useb.sml" in
  let _, pid =
    List.hd useb.Pickle.Binfile.uf_codeunit.Link.Codeunit.cu_exports
  in
  (match Pid.Map.find pid dynenv with
  | Value.Vrecord fields -> (
    match Symbol.Map.find (Symbol.intern "v") fields with
    | Value.Vint n -> Alcotest.(check int) "UseB sees new Beta.b" 20 n
    | v -> Alcotest.fail (Value.to_string v))
  | v -> Alcotest.fail (Value.to_string v));
  (* and a new client compiles against the skipped Alpha-client bin *)
  fs.Vfs.fs_write "chain.sml" "structure Chain = struct val w = UseA.v end";
  let stats3 =
    Driver.build mgr2 ~policy:Driver.Selective
      ~sources:("chain.sml" :: multi_files)
  in
  Alcotest.(check (list string))
    "only the new unit compiles" [ "chain.sml" ]
    (names stats3.Driver.st_recompiled)

let test_selective_entangled_types_cascade () =
  (* two exported modules sharing a generative type: changing the
     owner's interface must reach clients of the *other* module too,
     because its identity hangs off the owner's pid *)
  let sources =
    [
      ( "pair.sml",
        "structure Maker = struct datatype t = T of int fun mk n = T n end\n\
         structure User = struct fun un (Maker.T n) = n val probe = \
         Maker.mk 0 end" );
      ("client.sml", "structure Client = struct val v = User.un User.probe end");
    ]
  in
  let files = List.map fst sources in
  let fs, mgr = setup sources in
  let _ = Driver.build mgr ~policy:Driver.Selective ~sources:files in
  (* interface change to Maker (the type's owner) *)
  fs.Vfs.fs_write "pair.sml"
    "structure Maker = struct datatype t = T of int fun mk n = T n val more \
     = 1 end\n\
     structure User = struct fun un (Maker.T n) = n val probe = Maker.mk 0 \
     end";
  let stats = Driver.build mgr ~policy:Driver.Selective ~sources:files in
  (* User references Maker's type, so User's per-binding pid changes,
     and the client recompiles: no unsound skip *)
  Alcotest.(check (list string))
    "cascade reaches the client" [ "pair.sml"; "client.sml" ]
    (names stats.Driver.st_recompiled)

let suite =
  [
    Alcotest.test_case "dependency scan" `Quick test_scan;
    Alcotest.test_case "selective skips sibling changes" `Quick
      test_selective_skips_sibling_change;
    Alcotest.test_case "selective skip sound in fresh session" `Quick
      test_selective_skip_is_sound_in_fresh_session;
    Alcotest.test_case "selective: entangled types still cascade" `Quick
      test_selective_entangled_types_cascade;
    Alcotest.test_case "scan ignores local bindings" `Quick
      test_scan_ignores_locals;
    Alcotest.test_case "topological order" `Quick test_topological_order;
    Alcotest.test_case "initial build compiles all" `Quick
      test_initial_build_compiles_all;
    Alcotest.test_case "null build loads all" `Quick test_null_build_loads_all;
    Alcotest.test_case "timestamp cascades on touch" `Quick
      test_timestamp_cascades_on_touch;
    Alcotest.test_case "cutoff stops cascade on touch" `Quick
      test_cutoff_stops_cascade_on_touch;
    Alcotest.test_case "cutoff stops cascade on implementation change" `Quick
      test_cutoff_stops_cascade_on_impl_change;
    Alcotest.test_case "interface change recompiles the cone" `Quick
      test_interface_change_recompiles_cone;
    Alcotest.test_case "mid-chain edit spares the base" `Quick
      test_interface_change_mid_cone_only;
    Alcotest.test_case "diamond topology" `Quick test_diamond_topology;
    Alcotest.test_case "incremental equals scratch" `Quick
      test_cutoff_build_equals_scratch_build;
    Alcotest.test_case "execution after build" `Quick test_execution_after_build;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "duplicate module detection" `Quick
      test_duplicate_module_detection;
    Alcotest.test_case "corrupt bin forces recompile" `Quick
      test_corrupt_bin_forces_recompile;
    Alcotest.test_case "group files" `Quick test_group_files;
    Alcotest.test_case "functor across units with cutoff" `Quick
      test_functor_across_units;
  ]
