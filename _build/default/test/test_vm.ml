(* The bytecode VM, tested differentially against the tree-walking
   interpreter over the full front end. *)

module Context = Statics.Context
module Basis = Statics.Basis
module Elaborate = Statics.Elaborate
module Types = Statics.Types
module Parser = Lang.Parser
module Eval = Dynamics.Eval
module Vm = Dynamics.Vm

let lambda_of ?(decs = "") src =
  let ctx = Context.create () in
  Basis.register ctx;
  let env = Basis.env () in
  let delta, tdecs =
    if decs = "" then (Types.empty_env, [])
    else Elaborate.elab_decs ctx env (Parser.parse_decs ~file:"pre.sml" decs)
  in
  let env = Types.env_union env delta in
  let texp, _ = Elaborate.elab_exp ctx env (Parser.parse_exp ~file:"t.sml" src) in
  Translate.tdecs tdecs (Translate.texp texp)

type outcome = Finished of string * string | Raised of string

let run_interp code =
  let buf = Buffer.create 32 in
  let rt =
    Eval.runtime ~output:(Buffer.add_string buf)
      ~imports:Digestkit.Pid.Map.empty ()
  in
  match Eval.run rt code with
  | v -> Finished (Vm.observe_eval v, Buffer.contents buf)
  | exception Eval.Sml_raise (Dynamics.Value.Vexn (id, _)) ->
    Raised (Support.Symbol.name id.Dynamics.Value.exn_name)

let run_vm code =
  let buf = Buffer.create 32 in
  let program = Vm.compile code in
  match
    Vm.run ~output:(Buffer.add_string buf) ~imports:Digestkit.Pid.Map.empty
      program
  with
  | v -> Finished (Vm.observe v, Buffer.contents buf)
  | exception Vm.Vm_raise (Vm.Exnpkt (id, _)) ->
    Raised (Support.Symbol.name id.Dynamics.Value.exn_name)

let agree ?decs src =
  let code = lambda_of ?decs src in
  let a = run_interp code in
  let b = run_vm code in
  let show = function
    | Finished (v, out) -> Printf.sprintf "%s (output %S)" v out
    | Raised e -> "raised " ^ e
  in
  Alcotest.(check string) src (show a) (show b)

let test_arithmetic () =
  agree "1 + 2 * 3 - 4";
  agree "~7 div 2";
  agree "10 mod 3";
  agree "(1 < 2, 2 <= 2, 3 > 4, \"a\" ^ \"b\")"

let test_functions () =
  agree "let val add = fn a => fn b => a + b in add 2 40 end";
  agree ~decs:"fun twice f x = f (f x)" "twice (fn n => n * 3) 2";
  agree ~decs:"fun fact n = if n = 0 then 1 else n * fact (n - 1)" "fact 12";
  agree
    ~decs:
      "fun even n = if n = 0 then true else odd (n - 1)\n\
       and odd n = if n = 0 then false else even (n - 1)"
    "(even 10, odd 7)"

let test_data_and_matching () =
  agree ~decs:"datatype 'a opt = N | S of 'a" "case S 5 of N => 0 | S n => n";
  agree
    ~decs:
      "fun len xs = case xs of nil => 0 | _ :: r => 1 + len r\n\
       fun app (a, b) = case a of nil => b | x :: r => x :: app (r, b)"
    "len (app ([1, 2, 3], [4, 5]))";
  agree "case (1, (2, 3)) of (a, (b, c)) => a * 100 + b * 10 + c"

let test_exceptions () =
  agree ~decs:"exception Boom of int" "(raise Boom 5) handle Boom n => n * 2";
  agree "1 div 0";
  (* uncaught: both raise Div *)
  agree "(1 div 0) handle Div => 99";
  agree ~decs:"exception A exception B"
    "((raise A) handle B => 1) handle A => 2";
  agree
    ~decs:"exception E"
    "let fun dig n = if n = 0 then raise E else 1 + dig (n - 1) in dig 5 \
     handle E => 100 end"

let test_refs_and_effects () =
  agree "let val r = ref 10 in (r := !r + 1; r := !r * 2; !r) end";
  agree "(print \"side\"; print \"fx\"; 7)"

let test_structures_as_records () =
  agree
    ~decs:
      "structure M = struct val x = 3 fun inc n = n + x end\n\
       structure N = struct structure Inner = M end"
    "N.Inner.inc (N.Inner.x)"

let test_deep_recursion_in_vm () =
  (* the VM must sustain deeper call chains than naive OCaml recursion
     in the interpreter would; keep this within the interpreter's reach
     so both agree *)
  agree ~decs:"fun sum n = if n = 0 then 0 else n + sum (n - 1)" "sum 5000"

let qcheck_differential =
  QCheck.Test.make ~count:60 ~name:"vm agrees with interpreter on random programs"
    (QCheck.make ~print:Fun.id
       QCheck.Gen.(
         let pure_exp =
           sized
           @@ fix (fun self n ->
                  if n <= 0 then map string_of_int (0 -- 30)
                  else
                    frequency
                      [
                        (1, map string_of_int (0 -- 30));
                        ( 2,
                          map2
                            (fun a b -> Printf.sprintf "(%s + %s)" a b)
                            (self (n / 2)) (self (n / 2)) );
                        ( 1,
                          map2
                            (fun a b -> Printf.sprintf "(%s * %s)" a b)
                            (self (n / 3)) (self (n / 3)) );
                        ( 1,
                          map3
                            (fun a b c ->
                              Printf.sprintf "(if %s < %s then %s else %s)" a
                                b c a)
                            (self (n / 3)) (self (n / 3)) (self (n / 3)) );
                        ( 1,
                          map2
                            (fun a b ->
                              Printf.sprintf "(let val q = %s in q + %s end)"
                                a b)
                            (self (n / 2)) (self (n / 2)) );
                      ])
         in
         pure_exp))
    (fun src ->
      let code = lambda_of src in
      run_interp code = run_vm code)

let test_program_length () =
  let code = lambda_of "1 + 2" in
  let program = Vm.compile code in
  Alcotest.(check bool) "program non-empty" true (Vm.program_length program > 0)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "functions and recursion" `Quick test_functions;
    Alcotest.test_case "data and matching" `Quick test_data_and_matching;
    Alcotest.test_case "exceptions" `Quick test_exceptions;
    Alcotest.test_case "refs and effects" `Quick test_refs_and_effects;
    Alcotest.test_case "structures as records" `Quick
      test_structures_as_records;
    Alcotest.test_case "deep recursion" `Quick test_deep_recursion_in_vm;
    Alcotest.test_case "program length" `Quick test_program_length;
    QCheck_alcotest.to_alcotest qcheck_differential;
  ]
