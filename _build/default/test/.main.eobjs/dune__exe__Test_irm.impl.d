test/test_irm.ml: Alcotest Depend Digestkit Dynamics Filename Irm Link List Pickle String Support Vfs
