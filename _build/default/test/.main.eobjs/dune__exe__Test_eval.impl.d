test/test_eval.ml: Alcotest Buffer Digestkit Dynamics Lang List Statics Support Translate
