test/test_interactive.ml: Alcotest Buffer List Sepcomp String Support
