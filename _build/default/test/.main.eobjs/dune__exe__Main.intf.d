test/main.mli:
