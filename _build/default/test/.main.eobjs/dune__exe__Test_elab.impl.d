test/test_elab.ml: Alcotest Lang Statics String Support
