test/test_digest.ml: Alcotest Char Digestkit Gen Hashtbl Int64 List Printf QCheck QCheck_alcotest String
