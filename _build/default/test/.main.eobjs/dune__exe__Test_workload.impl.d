test/test_workload.ml: Alcotest Digestkit Irm List Option Pickle Vfs Workload
