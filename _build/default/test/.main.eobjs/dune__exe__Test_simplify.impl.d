test/test_simplify.ml: Alcotest Lambda Simplify Statics Support
