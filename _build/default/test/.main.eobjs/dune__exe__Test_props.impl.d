test/test_props.ml: Digestkit Dynamics Irm Lambda Link List Pickle Printf QCheck QCheck_alcotest Sepcomp String Support Vfs Workload
