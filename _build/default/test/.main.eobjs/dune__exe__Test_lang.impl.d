test/test_lang.ml: Alcotest Lang List Printf QCheck QCheck_alcotest String Support
