test/test_pickle.ml: Alcotest Digestkit List Pickle Printf Statics String Support
