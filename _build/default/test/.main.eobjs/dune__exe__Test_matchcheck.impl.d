test/test_matchcheck.ml: Alcotest Lang List Printf Statics String
