test/test_sepcomp.ml: Alcotest Buffer Bytes Char Digestkit Dynamics Link List Pickle Sepcomp String Support
