test/test_support.ml: Alcotest Gen QCheck QCheck_alcotest String Support
