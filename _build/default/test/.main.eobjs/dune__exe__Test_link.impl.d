test/test_link.ml: Alcotest Digestkit Dynamics Lambda Link List String Support
