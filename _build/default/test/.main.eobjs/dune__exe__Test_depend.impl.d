test/test_depend.ml: Alcotest Depend Lang List Printf String Support
