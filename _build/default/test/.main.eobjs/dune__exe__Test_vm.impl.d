test/test_vm.ml: Alcotest Buffer Digestkit Dynamics Fun Lang Printf QCheck QCheck_alcotest Statics Support Translate
