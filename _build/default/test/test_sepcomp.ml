(* The paper's pipeline end to end: separate compilation, intrinsic
   pids, pickling, type-safe linkage, cutoff behaviour. *)

module Compile = Sepcomp.Compile
module Interactive = Sepcomp.Interactive
module Binfile = Pickle.Binfile
module Hashenv = Pickle.Hashenv
module Linker = Link.Linker
module Value = Dynamics.Value
module Pid = Digestkit.Pid
module Diag = Support.Diag

let unit_a =
  "structure A = struct\n\
  \  val x = 3\n\
  \  val y = 4\n\
  \  fun double n = n * 2\n\
   end"

let unit_b =
  "structure B = struct\n\
  \  val z = A.double (A.x + A.y)\n\
   end"

let lookup_int dynenv (uf : Binfile.t) strname field =
  let _, pid =
    List.find
      (fun (n, _) -> String.equal (Support.Symbol.name n) strname)
      uf.uf_codeunit.Link.Codeunit.cu_exports
  in
  match Pid.Map.find pid dynenv with
  | Value.Vrecord fields -> (
    match Support.Symbol.Map.find (Support.Symbol.intern field) fields with
    | Value.Vint n -> n
    | v -> Alcotest.fail ("field is " ^ Value.to_string v))
  | v -> Alcotest.fail ("export is " ^ Value.to_string v)

let test_compile_execute () =
  let session = Compile.new_session () in
  let a = Compile.compile session ~name:"a.sml" ~source:unit_a ~imports:[] in
  let dynenv = Compile.execute a Linker.empty in
  Alcotest.(check int) "A.x" 3 (lookup_int dynenv a "A" "x");
  let b = Compile.compile session ~name:"b.sml" ~source:unit_b ~imports:[ a ] in
  let dynenv = Compile.execute b dynenv in
  Alcotest.(check int) "B.z = double (3+4)" 14 (lookup_int dynenv b "B" "z")

let test_imports_recorded () =
  let session = Compile.new_session () in
  let a = Compile.compile session ~name:"a.sml" ~source:unit_a ~imports:[] in
  let b = Compile.compile session ~name:"b.sml" ~source:unit_b ~imports:[ a ] in
  (* the cutoff record: B was compiled against A's interface pid *)
  Alcotest.(check int) "one static import" 1 (List.length b.uf_import_statics);
  let name, pid = List.hd b.uf_import_statics in
  Alcotest.(check string) "import name" "a.sml" name;
  Alcotest.(check bool) "import pid is A's" true (Pid.equal pid a.uf_static_pid);
  (* and exactly one dynamic import *)
  Alcotest.(check int) "one dynamic import" 1
    (List.length b.uf_codeunit.Link.Codeunit.cu_imports)

let test_type_safe_linkage () =
  let session = Compile.new_session () in
  let a = Compile.compile session ~name:"a.sml" ~source:unit_a ~imports:[] in
  let b = Compile.compile session ~name:"b.sml" ~source:unit_b ~imports:[ a ] in
  (* executing B without A is a link error, not a wrong answer *)
  match Diag.guard (fun () -> Compile.execute b Linker.empty) with
  | Error d -> Alcotest.(check bool) "link phase" true (d.Diag.phase = Diag.Link)
  | Ok _ -> Alcotest.fail "expected a link error"

let test_stale_import_caught () =
  (* the paper's "makefile bug": B compiled against an old A must not
     link against a new A with a different interface *)
  let session = Compile.new_session () in
  let a = Compile.compile session ~name:"a.sml" ~source:unit_a ~imports:[] in
  let b = Compile.compile session ~name:"b.sml" ~source:unit_b ~imports:[ a ] in
  let a' =
    Compile.compile session ~name:"a.sml"
      ~source:"structure A = struct val x = \"now a string\" end" ~imports:[]
  in
  let dynenv = Compile.execute a' Linker.empty in
  match Diag.guard (fun () -> Compile.execute b dynenv) with
  | Error d -> Alcotest.(check bool) "link phase" true (d.Diag.phase = Diag.Link)
  | Ok _ -> Alcotest.fail "stale import must fail to link"

let test_hash_stability_comments () =
  let session = Compile.new_session () in
  let a1 = Compile.compile session ~name:"a.sml" ~source:unit_a ~imports:[] in
  let with_comments =
    "(* a comment *) structure A = struct\n\
     val x = 3 (* three *)\n\
     val y = 4\n\
     fun double n = n * 2\n\
     end"
  in
  let a2 =
    Compile.compile session ~name:"a.sml" ~source:with_comments ~imports:[]
  in
  Alcotest.(check bool) "comment change keeps the interface pid" true
    (Pid.equal a1.uf_static_pid a2.uf_static_pid)

let test_hash_stability_implementation () =
  (* same types, different implementation: same intrinsic pid — the
     cutoff case the paper motivates *)
  let session = Compile.new_session () in
  let a1 = Compile.compile session ~name:"a.sml" ~source:unit_a ~imports:[] in
  let changed =
    "structure A = struct\n\
     val x = 30\n\
     val y = 40\n\
     fun double n = n + n\n\
     end"
  in
  let a2 = Compile.compile session ~name:"a.sml" ~source:changed ~imports:[] in
  Alcotest.(check bool) "implementation change keeps the interface pid" true
    (Pid.equal a1.uf_static_pid a2.uf_static_pid)

let test_hash_sensitivity_interface () =
  let session = Compile.new_session () in
  let a1 = Compile.compile session ~name:"a.sml" ~source:unit_a ~imports:[] in
  let changed_type =
    "structure A = struct\n\
     val x = \"s\"\n\
     val y = 4\n\
     fun double n = n * 2\n\
     end"
  in
  let a2 =
    Compile.compile session ~name:"a.sml" ~source:changed_type ~imports:[]
  in
  Alcotest.(check bool) "type change changes the interface pid" false
    (Pid.equal a1.uf_static_pid a2.uf_static_pid);
  let added_val =
    "structure A = struct\n\
     val x = 3\n\
     val y = 4\n\
     val extra = 5\n\
     fun double n = n * 2\n\
     end"
  in
  let a3 =
    Compile.compile session ~name:"a.sml" ~source:added_val ~imports:[]
  in
  Alcotest.(check bool) "added export changes the interface pid" false
    (Pid.equal a1.uf_static_pid a3.uf_static_pid)

let test_hash_alpha_conversion () =
  (* hidden internals (local helpers) do not perturb the hash even
     though they consume provisional stamps *)
  let session = Compile.new_session () in
  let plain =
    "structure A = struct datatype t = T of int val get = fn T n => n end"
  in
  let with_hidden =
    "structure Hidden = struct datatype junk = J1 | J2 | J3 end\n\
     structure A = struct datatype t = T of int val get = fn T n => n end"
  in
  let a1 = Compile.compile session ~name:"a.sml" ~source:plain ~imports:[] in
  (* compile a unit with extra stamp consumption first, then A again *)
  let _noise =
    Compile.compile session ~name:"noise.sml"
      ~source:"structure N = struct datatype n = N1 | N2 end" ~imports:[]
  in
  let a2 = Compile.compile session ~name:"a.sml" ~source:plain ~imports:[] in
  Alcotest.(check bool) "stamp numbering is alpha-converted" true
    (Pid.equal a1.uf_static_pid a2.uf_static_pid);
  (* but the A inside a bigger unit hashes differently (more exports) *)
  let a3 =
    Compile.compile session ~name:"a.sml" ~source:with_hidden ~imports:[]
  in
  Alcotest.(check bool) "extra exported structure changes pid" false
    (Pid.equal a1.uf_static_pid a3.uf_static_pid)

let test_pickle_roundtrip () =
  let session = Compile.new_session () in
  let source =
    "signature S = sig type t val mk : int -> t val un : t -> int end\n\
     structure M :> S = struct type t = int fun mk n = n fun un n = n end\n\
     functor Twice (X : S) = struct fun go n = X.un (X.mk n) * 2 end\n\
     structure T = Twice(M)\n\
     structure Data = struct datatype color = Red | Green | Blue\n\
       exception Bad of string\n\
       fun name c = case c of Red => \"r\" | Green => \"g\" | Blue => \"b\"\n\
     end"
  in
  let a = Compile.compile session ~name:"m.sml" ~source ~imports:[] in
  let bytes = Compile.save session a in
  (* load into a *fresh* session: rehydration must be self-contained *)
  let session2 = Compile.new_session () in
  let a' = Compile.load session2 bytes in
  Alcotest.(check bool) "static pid preserved" true
    (Pid.equal a.uf_static_pid a'.uf_static_pid);
  Alcotest.(check string) "name preserved" a.uf_name a'.uf_name;
  (* the rehydrated interface re-hashes to the same intrinsic pids *)
  (match
     Hashenv.verify (Compile.context session2)
       ~name_statics:a'.uf_name_statics a'.uf_env
   with
  | Some recomputed ->
    Alcotest.(check bool) "rehydrated env re-hashes identically" true
      (Pid.equal recomputed a.uf_static_pid)
  | None -> Alcotest.fail "per-binding verification failed");
  (* and a dependent compiles against the rehydrated unit and runs *)
  let b =
    Compile.compile session2 ~name:"use.sml"
      ~source:
        "structure Use = struct val v = T.go 21 val nm = Data.name Data.Green \
         end"
      ~imports:[ a' ]
  in
  let dynenv = Compile.execute a' Linker.empty in
  let dynenv = Compile.execute b dynenv in
  Alcotest.(check int) "functor through pickle" 42 (lookup_int dynenv b "Use" "v")

let test_bitwise_deterministic_bins () =
  (* two sessions compiling the same source produce byte-identical bins *)
  let s1 = Compile.new_session () in
  let s2 = Compile.new_session () in
  let a1 = Compile.compile s1 ~name:"a.sml" ~source:unit_a ~imports:[] in
  let a2 = Compile.compile s2 ~name:"a.sml" ~source:unit_a ~imports:[] in
  Alcotest.(check bool) "same static pid across sessions" true
    (Pid.equal a1.uf_static_pid a2.uf_static_pid)

let test_corrupt_bin_rejected () =
  let session = Compile.new_session () in
  let a = Compile.compile session ~name:"a.sml" ~source:unit_a ~imports:[] in
  let bytes = Compile.save session a in
  let damaged = Bytes.of_string bytes in
  let mid = Bytes.length damaged / 2 in
  Bytes.set damaged mid
    (Char.chr (Char.code (Bytes.get damaged mid) lxor 0x40));
  (match Compile.load session (Bytes.to_string damaged) with
  | exception Pickle.Buf.Corrupt _ -> ()
  | exception Support.Diag.Error _ -> ()
  | _ -> Alcotest.fail "corrupt bin must be rejected");
  (* truncation as well *)
  match
    Compile.load session (String.sub bytes 0 (String.length bytes - 3))
  with
  | exception Pickle.Buf.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated bin must be rejected"

let test_cutoff_dynamic_pids_stable () =
  (* same interface ⇒ same dynamic pids ⇒ an old dependent links and
     runs against the *new* implementation without recompilation *)
  let session = Compile.new_session () in
  let a = Compile.compile session ~name:"a.sml" ~source:unit_a ~imports:[] in
  let b = Compile.compile session ~name:"b.sml" ~source:unit_b ~imports:[ a ] in
  let changed_impl =
    "structure A = struct\n\
     val x = 10\n\
     val y = 1\n\
     fun double n = n * 2\n\
     end"
  in
  let a' =
    Compile.compile session ~name:"a.sml" ~source:changed_impl ~imports:[]
  in
  Alcotest.(check bool) "interface pid unchanged" true
    (Pid.equal a.uf_static_pid a'.uf_static_pid);
  (* execute new A, then the *old* B bin *)
  let dynenv = Compile.execute a' Linker.empty in
  let dynenv = Compile.execute b dynenv in
  Alcotest.(check int) "old B over new A: double (10+1)" 22
    (lookup_int dynenv b "B" "z")

let test_interactive_loop () =
  let buf = Buffer.create 64 in
  let repl = Interactive.create ~output:(Buffer.add_string buf) () in
  let out1 = Interactive.eval repl "val x = 3 + 4" in
  Alcotest.(check (list string)) "binding display" [ "val x = 7 : int" ]
    out1.Interactive.bindings;
  let _ = Interactive.eval repl "fun triple n = 3 * n" in
  let out3 = Interactive.eval repl "triple x" in
  Alcotest.(check (list string)) "it binding" [ "val it = 21 : int" ]
    out3.Interactive.bindings;
  let _ = Interactive.eval repl "print (intToString (triple 100))" in
  Alcotest.(check string) "print output" "300" (Buffer.contents buf);
  (* modules work interactively too *)
  let out5 =
    Interactive.eval repl
      "structure S = struct val v = triple 2 end"
  in
  Alcotest.(check (list string)) "structure display" [ "structure S" ]
    out5.Interactive.bindings;
  let out6 = Interactive.eval repl "S.v" in
  Alcotest.(check (list string)) "qualified access" [ "val it = 6 : int" ]
    out6.Interactive.bindings

let test_interactive_use_compiled_unit () =
  (* the REPL as the paper's bootstrap loader: bring a separately
     compiled unit into an interactive session *)
  let session = Compile.new_session () in
  let a = Compile.compile session ~name:"a.sml" ~source:unit_a ~imports:[] in
  let bytes = Compile.save session a in
  let repl = Interactive.create ~output:ignore () in
  let a' = Pickle.Binfile.read (Interactive.context repl) bytes in
  let dynenv = Compile.execute a' Linker.empty in
  Interactive.use repl a' dynenv;
  let out = Interactive.eval repl "A.double (A.x + A.y)" in
  Alcotest.(check (list string)) "compiled unit usable from the loop"
    [ "val it = 14 : int" ] out.Interactive.bindings

let suite =
  [
    Alcotest.test_case "compile and execute units" `Quick test_compile_execute;
    Alcotest.test_case "import pids recorded" `Quick test_imports_recorded;
    Alcotest.test_case "type-safe linkage" `Quick test_type_safe_linkage;
    Alcotest.test_case "stale import caught at link time" `Quick
      test_stale_import_caught;
    Alcotest.test_case "hash ignores comments" `Quick
      test_hash_stability_comments;
    Alcotest.test_case "hash ignores implementation" `Quick
      test_hash_stability_implementation;
    Alcotest.test_case "hash tracks the interface" `Quick
      test_hash_sensitivity_interface;
    Alcotest.test_case "hash alpha-converts stamps" `Quick
      test_hash_alpha_conversion;
    Alcotest.test_case "pickle roundtrip across sessions" `Quick
      test_pickle_roundtrip;
    Alcotest.test_case "deterministic pids across sessions" `Quick
      test_bitwise_deterministic_bins;
    Alcotest.test_case "corrupt bins rejected" `Quick test_corrupt_bin_rejected;
    Alcotest.test_case "cutoff: old dependents run on new implementation"
      `Quick test_cutoff_dynamic_pids_stable;
    Alcotest.test_case "interactive loop" `Quick test_interactive_loop;
    Alcotest.test_case "interactive use of compiled units" `Quick
      test_interactive_use_compiled_unit;
  ]
