(* The lambda simplifier: specific rewrites and their guards. *)

module L = Lambda
module S = Simplify
module Symbol = Support.Symbol
module P = Statics.Prim

let v name = Symbol.intern name
let int n = L.Lint n
let app2 p a b = L.Lapp (L.Lprim p, L.Ltuple [ a; b ])

let check_simplifies msg term expected =
  Alcotest.(check string) msg (L.to_string expected) (L.to_string (S.term term))

let test_constant_folding () =
  check_simplifies "addition" (app2 P.Padd (int 2) (int 3)) (int 5);
  check_simplifies "nested arithmetic"
    (app2 P.Pmul (app2 P.Padd (int 1) (int 2)) (int 4))
    (int 12);
  check_simplifies "comparison" (app2 P.Plt (int 1) (int 2)) (L.Lcon0 1);
  check_simplifies "string concat"
    (app2 P.Pconcat (L.Lstring "a") (L.Lstring "b"))
    (L.Lstring "ab");
  check_simplifies "intToString"
    (L.Lapp (L.Lprim P.Pint_to_string, int (-3)))
    (L.Lstring "~3")

let test_division_by_zero_preserved () =
  (* 1 div 0 must raise Div at run time, so it cannot be folded *)
  let term = app2 P.Pdiv (int 1) (int 0) in
  check_simplifies "div by zero left alone" term term;
  let term2 = app2 P.Pmod (int 1) (int 0) in
  check_simplifies "mod by zero left alone" term2 term2

let test_beta_and_inline () =
  let x = v "x%b1" in
  check_simplifies "beta + fold"
    (L.Lapp (L.Lfn (x, app2 P.Padd (L.Lvar x) (int 1)), int 41))
    (int 42);
  let y = v "y%b2" in
  check_simplifies "atomic let inlined"
    (L.Llet (y, int 7, app2 P.Pmul (L.Lvar y) (L.Lvar y)))
    (int 49)

let test_dead_code () =
  let z = v "z%d1" in
  check_simplifies "dead pure binding dropped"
    (L.Llet (z, L.Ltuple [ int 1; int 2 ], int 0))
    (int 0);
  (* an impure binding is kept even if unused *)
  let w = v "w%d2" in
  let effect = L.Lapp (L.Lprim P.Pprint, L.Lstring "hi") in
  let term = L.Llet (w, effect, int 0) in
  check_simplifies "effectful binding kept" term term

let test_projections () =
  check_simplifies "select from literal tuple"
    (L.Lselect (1, L.Ltuple [ int 10; int 20; int 30 ]))
    (int 20);
  let f = Symbol.intern "field" in
  check_simplifies "field from literal record"
    (L.Lfield (f, L.Lrecord [ (f, int 5) ]))
    (int 5);
  check_simplifies "contag of literal constructor"
    (L.Lcontag (L.Lcon (3, int 0)))
    (int 3);
  check_simplifies "conarg of literal constructor"
    (L.Lconarg (L.Lcon (1, int 9)))
    (int 9)

let test_if_reduction () =
  check_simplifies "if true" (L.Lif (L.Lcon0 1, int 1, int 2)) (int 1);
  check_simplifies "if false" (L.Lif (L.Lcon0 0, int 1, int 2)) (int 2);
  check_simplifies "if with folded condition"
    (L.Lif (app2 P.Peq (int 3) (int 3), int 1, int 2))
    (int 1)

let test_handle_of_pure () =
  let x = v "x%h" in
  check_simplifies "handler around a pure body dropped"
    (L.Lhandle (int 5, x, int 0))
    (int 5)

let test_newexn_not_duplicated () =
  (* generative: a [newexn] binding must never be inlined or dropped *)
  let e = v "e%g" in
  let term =
    L.Llet
      ( e,
        L.Lnewexn (Symbol.intern "E", false),
        L.Ltuple [ L.Lvar e; L.Lvar e ] )
  in
  check_simplifies "newexn stays let-bound" term term

let test_fix_garbage_collection () =
  let f = v "f%f1" and g = v "g%f2" and x = v "x%f3" and y = v "y%f4" in
  let fix =
    L.Lfix
      ( [ (f, x, L.Lapp (L.Lvar f, L.Lvar x)); (g, y, L.Lvar y) ],
        L.Lapp (L.Lvar f, int 1) )
  in
  (* g is dead, f is live *)
  match S.term fix with
  | L.Lfix ([ (kept, _, _) ], _) ->
    Alcotest.(check string) "f kept" (Symbol.name f) (Symbol.name kept)
  | other -> Alcotest.fail ("unexpected: " ^ L.to_string other)

let test_stats () =
  let x = v "x%s" in
  let term = L.Lapp (L.Lfn (x, app2 P.Padd (L.Lvar x) (int 1)), int 1) in
  let _, stats = S.term_with_stats term in
  Alcotest.(check bool) "shrank" true (stats.S.after_nodes < stats.S.before_nodes);
  Alcotest.(check int) "final size" 1 stats.S.after_nodes

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "division by zero preserved" `Quick
      test_division_by_zero_preserved;
    Alcotest.test_case "beta and inlining" `Quick test_beta_and_inline;
    Alcotest.test_case "dead code" `Quick test_dead_code;
    Alcotest.test_case "projections" `Quick test_projections;
    Alcotest.test_case "if reduction" `Quick test_if_reduction;
    Alcotest.test_case "handle of pure body" `Quick test_handle_of_pure;
    Alcotest.test_case "generative newexn preserved" `Quick
      test_newexn_not_duplicated;
    Alcotest.test_case "dead fix bindings dropped" `Quick
      test_fix_garbage_collection;
    Alcotest.test_case "statistics" `Quick test_stats;
  ]
