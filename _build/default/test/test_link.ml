(* The linker layer in isolation: codeUnit well-formedness, dynamic
   environments, export extraction. *)

module Codeunit = Link.Codeunit
module Linker = Link.Linker
module Value = Dynamics.Value
module Pid = Digestkit.Pid
module Symbol = Support.Symbol
module L = Lambda

let pid_a = Pid.intrinsic "unit-a"
let pid_b = Pid.intrinsic "unit-b"

let test_imports_inferred () =
  let code =
    L.Lrecord
      [
        ( Symbol.intern "M",
          L.Ltuple [ L.Limport pid_a; L.Limport pid_b; L.Limport pid_a ] );
      ]
  in
  let cu = Codeunit.make ~exports:[ (Symbol.intern "M", Pid.intrinsic "x") ] code in
  Alcotest.(check int) "deduplicated imports" 2
    (List.length cu.Codeunit.cu_imports);
  Alcotest.(check bool) "well formed" true (Codeunit.well_formed cu)

let test_ill_formed_detected () =
  let code = L.Lrecord [ (Symbol.intern "M", L.Lint 1) ] in
  let cu =
    {
      Codeunit.cu_imports = [ pid_a ] (* claims an import the code lacks *);
      cu_exports = [];
      cu_code = code;
    }
  in
  Alcotest.(check bool) "mismatch detected" false (Codeunit.well_formed cu)

let test_execute_exports () =
  let export_pid = Pid.intrinsic "m-dyn" in
  let code = L.Lrecord [ (Symbol.intern "M", L.Lint 42) ] in
  let cu = Codeunit.make ~exports:[ (Symbol.intern "M", export_pid) ] code in
  let dynenv = Linker.execute cu Linker.empty in
  (match Pid.Map.find_opt export_pid dynenv with
  | Some (Value.Vint 42) -> ()
  | Some v -> Alcotest.fail (Value.to_string v)
  | None -> Alcotest.fail "export missing");
  match Linker.export_values cu dynenv with
  | [ (name, Value.Vint 42) ] ->
    Alcotest.(check string) "name" "M" (Symbol.name name)
  | _ -> Alcotest.fail "export_values"

let test_missing_import_lists_pids () =
  let code = L.Lrecord [ (Symbol.intern "M", L.Limport pid_a) ] in
  let cu = Codeunit.make ~exports:[] code in
  match Support.Diag.guard (fun () -> Linker.execute cu Linker.empty) with
  | Error d ->
    Alcotest.(check bool) "link phase" true (d.Support.Diag.phase = Support.Diag.Link);
    Alcotest.(check bool) "names the pid" true
      (let needle = Pid.short pid_a in
       let msg = d.Support.Diag.message in
       let rec has i =
         i + String.length needle <= String.length msg
         && (String.equal (String.sub msg i (String.length needle)) needle
             || has (i + 1))
       in
       has 0)
  | Ok _ -> Alcotest.fail "expected link error"

let test_non_record_result_rejected () =
  let cu = Codeunit.make ~exports:[ (Symbol.intern "M", pid_a) ] (L.Lint 1) in
  match Support.Diag.guard (fun () -> Linker.execute cu Linker.empty) with
  | Error d ->
    Alcotest.(check bool) "link phase" true
      (d.Support.Diag.phase = Support.Diag.Link)
  | Ok _ -> Alcotest.fail "expected link error"

let test_dynenv_layering () =
  (* later executions shadow earlier exports under the same pid,
     mirroring recompile-and-re-execute of the same unit *)
  let export_pid = Pid.intrinsic "m-dyn2" in
  let mk n =
    Codeunit.make
      ~exports:[ (Symbol.intern "M", export_pid) ]
      (L.Lrecord [ (Symbol.intern "M", L.Lint n) ])
  in
  let dynenv = Linker.execute (mk 1) Linker.empty in
  let dynenv = Linker.execute (mk 2) dynenv in
  match Pid.Map.find_opt export_pid dynenv with
  | Some (Value.Vint 2) -> ()
  | _ -> Alcotest.fail "latest execution should win"

let suite =
  [
    Alcotest.test_case "imports inferred from code" `Quick test_imports_inferred;
    Alcotest.test_case "ill-formed units detected" `Quick
      test_ill_formed_detected;
    Alcotest.test_case "execute adds exports" `Quick test_execute_exports;
    Alcotest.test_case "missing imports are named" `Quick
      test_missing_import_lists_pids;
    Alcotest.test_case "non-record results rejected" `Quick
      test_non_record_result_rejected;
    Alcotest.test_case "dynenv layering" `Quick test_dynenv_layering;
  ]
