(* Digest substrate: MD5 against RFC 1321 vectors, CRC-64 properties,
   pid behaviour. *)

let md5_hex s = Digestkit.Md5.hex (Digestkit.Md5.digest_string s)

let rfc1321_vectors =
  [
    ("", "d41d8cd98f00b204e9800998ecf8427e");
    ("a", "0cc175b9c0f1b6a831c399e269772661");
    ("abc", "900150983cd24fb0d6963f7d28e17f72");
    ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
    ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
      "d174ab98d277d9f5a5611c2c9f419d9f" );
    ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
      "57edf4a22be3c955ac49da2e2107b67a" );
  ]

let test_md5_vectors () =
  List.iter
    (fun (input, expect) ->
      Alcotest.(check string) ("md5 of " ^ input) expect (md5_hex input))
    rfc1321_vectors

let test_md5_incremental () =
  (* Feeding in arbitrary chunk sizes must agree with one-shot hashing. *)
  let data = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let whole = Digestkit.Md5.digest_string data in
  List.iter
    (fun chunk ->
      let ctx = Digestkit.Md5.init () in
      let i = ref 0 in
      while !i < String.length data do
        let n = min chunk (String.length data - !i) in
        Digestkit.Md5.feed_string ctx (String.sub data !i n);
        i := !i + n
      done;
      Alcotest.(check string)
        (Printf.sprintf "chunked by %d" chunk)
        (Digestkit.Md5.hex whole)
        (Digestkit.Md5.hex (Digestkit.Md5.finish ctx)))
    [ 1; 3; 63; 64; 65; 127; 1000 ]

let test_md5_padding_boundaries () =
  (* Lengths straddling the 55/56/64-byte padding boundaries exercise
     both padding branches. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let again = md5_hex s in
      Alcotest.(check string) (Printf.sprintf "len %d stable" n) again
        (md5_hex s);
      Alcotest.(check int) "digest width" 32 (String.length again))
    [ 54; 55; 56; 57; 63; 64; 65; 119; 120; 121 ]

let test_crc64_known () =
  (* CRC-64/XZ ("GO-ECMA") check value for "123456789". *)
  Alcotest.(check string)
    "crc64 check vector" "995dc9bbdf1939fa"
    (Digestkit.Crc64.to_hex (Digestkit.Crc64.of_string "123456789"))

let test_crc64_incremental () =
  let data = "the quick brown fox jumps over the lazy dog" in
  let one = Digestkit.Crc64.of_string data in
  let split =
    let c = Digestkit.Crc64.update_string Digestkit.Crc64.init "the quick " in
    let c = Digestkit.Crc64.update_string c "brown fox jumps" in
    let c = Digestkit.Crc64.update_string c " over the lazy dog" in
    Digestkit.Crc64.finish c
  in
  Alcotest.(check string)
    "incremental = one-shot"
    (Digestkit.Crc64.to_hex one)
    (Digestkit.Crc64.to_hex split)

let test_pid_roundtrip () =
  let p = Digestkit.Pid.intrinsic "some static environment" in
  let p' = Digestkit.Pid.of_bytes (Digestkit.Pid.to_bytes p) in
  Alcotest.(check bool) "bytes roundtrip" true (Digestkit.Pid.equal p p');
  Alcotest.(check int) "hex width" 32 (String.length (Digestkit.Pid.to_hex p))

let test_pid_fresh_distinct () =
  let n = 1000 in
  let seen = Hashtbl.create n in
  for _ = 1 to n do
    let p = Digestkit.Pid.fresh () in
    Alcotest.(check bool) "fresh pid unseen" false
      (Hashtbl.mem seen (Digestkit.Pid.to_bytes p));
    Hashtbl.add seen (Digestkit.Pid.to_bytes p) ()
  done

let test_pid_intrinsic_deterministic () =
  let a = Digestkit.Pid.intrinsic "payload" in
  let b = Digestkit.Pid.intrinsic "payload" in
  let c = Digestkit.Pid.intrinsic "payload2" in
  Alcotest.(check bool) "same payload, same pid" true (Digestkit.Pid.equal a b);
  Alcotest.(check bool) "different payload, different pid" false
    (Digestkit.Pid.equal a c)

let test_pid_truncation () =
  let p = Digestkit.Pid.intrinsic "x" in
  let v8 = Digestkit.Pid.truncated_bits p 8 in
  let v16 = Digestkit.Pid.truncated_bits p 16 in
  Alcotest.(check bool) "8-bit range" true (v8 >= 0 && v8 < 256);
  Alcotest.(check bool) "16-bit range" true (v16 >= 0 && v16 < 65536);
  Alcotest.(check int) "low bits agree" (v16 land 0xFF) v8

let qcheck_md5_avalanche =
  QCheck.Test.make ~count:200 ~name:"md5: single-byte change alters digest"
    QCheck.(pair (string_of_size Gen.(1 -- 80)) small_nat)
    (fun (s, i) ->
      QCheck.assume (String.length s > 0);
      let i = i mod String.length s in
      let s' =
        String.mapi
          (fun j c -> if j = i then Char.chr ((Char.code c + 1) land 0xFF) else c)
          s
      in
      not (String.equal (Digestkit.Md5.digest_string s) (Digestkit.Md5.digest_string s')))

let qcheck_crc64_append =
  QCheck.Test.make ~count:200 ~name:"crc64: streaming equals one-shot"
    QCheck.(pair (string_of_size Gen.(0 -- 60)) (string_of_size Gen.(0 -- 60)))
    (fun (a, b) ->
      let one = Digestkit.Crc64.of_string (a ^ b) in
      let two =
        Digestkit.Crc64.finish
          (Digestkit.Crc64.update_string
             (Digestkit.Crc64.update_string Digestkit.Crc64.init a)
             b)
      in
      Int64.equal one two)

let suite =
  [
    Alcotest.test_case "md5 rfc1321 vectors" `Quick test_md5_vectors;
    Alcotest.test_case "md5 incremental feeding" `Quick test_md5_incremental;
    Alcotest.test_case "md5 padding boundaries" `Quick test_md5_padding_boundaries;
    Alcotest.test_case "crc64 check vector" `Quick test_crc64_known;
    Alcotest.test_case "crc64 incremental" `Quick test_crc64_incremental;
    Alcotest.test_case "pid bytes roundtrip" `Quick test_pid_roundtrip;
    Alcotest.test_case "fresh pids distinct" `Quick test_pid_fresh_distinct;
    Alcotest.test_case "intrinsic pids deterministic" `Quick
      test_pid_intrinsic_deterministic;
    Alcotest.test_case "pid truncation" `Quick test_pid_truncation;
    QCheck_alcotest.to_alcotest qcheck_md5_avalanche;
    QCheck_alcotest.to_alcotest qcheck_crc64_append;
  ]
