(* The paper's figure 1, end to end and for real.

   A [TopSort] functor parameterized by a PARTIAL_ORDER, instantiated
   with the divisibility order [Factors] — and, because MiniSML
   signatures are transparent, the fact that [FSort.t = int] propagates
   through the functor application: the paper's motivating example of
   inter-implementation dependence.

   Here the sort is a genuine topological insertion sort, the units are
   compiled *separately* through the IRM, and the demo then edits the
   functor's implementation to show cutoff recompilation crossing a
   functor boundary.

     dune exec examples/topsort.exe *)

let sig_unit =
  "signature PARTIAL_ORDER = sig\n\
  \  type elem\n\
  \  val less : elem * elem -> bool\n\
   end\n\
   signature SORT = sig\n\
  \  type t\n\
  \  val sort : t list -> t list\n\
   end"

let topsort_unit =
  "functor TopSort (P : PARTIAL_ORDER) : SORT = struct\n\
  \  type t = P.elem\n\
  \  fun insert (x, nil) = [x]\n\
  \    | insert (x, y :: ys) = if P.less (x, y) then x :: y :: ys\n\
  \                            else y :: insert (x, ys)\n\
  \  fun sort nil = nil\n\
  \    | sort (x :: xs) = insert (x, sort xs)\n\
   end"

let factors_unit =
  "structure Factors : PARTIAL_ORDER = struct\n\
  \  type elem = int\n\
  \  fun less (i, j) = j mod i = 0\n\
   end"

let main_unit =
  "structure FSort : SORT = TopSort(Factors)\n\
   structure Main = struct\n\
  \  fun show nil = print \"\\n\"\n\
  \    | show (x :: xs) = (print (intToString x); print \" \"; show xs)\n\
  \  val sorted = FSort.sort [12, 2, 6, 3, 24, 4]\n\
  \  val out = (print \"divisibility order: \"; show sorted)\n\
   end"

let () =
  let fs = Vfs.memory () in
  List.iter
    (fun (file, src) -> fs.Vfs.fs_write file src)
    [
      ("order.sml", sig_unit);
      ("topsort.sml", topsort_unit);
      ("factors.sml", factors_unit);
      ("main.sml", main_unit);
    ];
  let sources = [ "main.sml"; "topsort.sml"; "order.sml"; "factors.sml" ] in
  let mgr = Irm.Driver.create fs in
  let stats = Irm.Driver.build mgr ~policy:Irm.Driver.Cutoff ~sources in
  Printf.printf "build order: %s\n" (String.concat " " stats.Irm.Driver.st_order);
  let _ = Irm.Driver.run mgr ~sources in

  (* transparency: FSort.t = int is visible through the functor, so an
     int-typed expression mixing FSort's result with arithmetic
     elaborates — the REPL proves it on the built units *)
  let repl = Sepcomp.Interactive.create () in
  let dynenv =
    List.fold_left
      (fun dynenv file ->
        let unit_ = Irm.Driver.unit_of mgr file in
        let dynenv = Sepcomp.Compile.execute unit_ dynenv in
        Sepcomp.Interactive.use repl unit_ dynenv;
        dynenv)
      Link.Linker.empty stats.Irm.Driver.st_order
  in
  ignore dynenv;
  let outcome =
    Sepcomp.Interactive.eval repl
      "case FSort.sort [9, 3, 27] of x :: _ => x + 1000 | nil => 0"
  in
  List.iter
    (fun line -> Printf.printf "transparent result type: %s\n" line)
    outcome.Sepcomp.Interactive.bindings;

  (* cutoff across the functor boundary: swap the insertion strategy
     (interface identical), rebuild — only topsort.sml recompiles *)
  fs.Vfs.fs_write "topsort.sml"
    "functor TopSort (P : PARTIAL_ORDER) : SORT = struct\n\
    \  type t = P.elem\n\
    \  fun rev (nil, acc) = acc | rev (x :: xs, acc) = rev (xs, x :: acc)\n\
    \  fun insert (x, nil) = [x]\n\
    \    | insert (x, y :: ys) = if P.less (x, y) then x :: y :: ys\n\
    \                            else y :: insert (x, ys)\n\
    \  fun sort xs = rev (let fun go nil = nil | go (x :: r) = insert (x, go \
     r) in go (rev (xs, nil)) end, nil)\n\
     end";
  let stats2 = Irm.Driver.build mgr ~policy:Irm.Driver.Cutoff ~sources in
  Printf.printf "after editing the functor body: recompiled = [%s]\n"
    (String.concat "; " stats2.Irm.Driver.st_recompiled);
  let _ = Irm.Driver.run mgr ~sources in
  ()
