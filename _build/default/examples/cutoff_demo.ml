(* Cutoff vs timestamp recompilation, side by side.

   Generates a synthetic 12-unit project (a random DAG), applies the
   three canonical edits — comment-only, implementation-only, and
   interface-changing — to a unit in the middle of the dependency
   order, and prints how many units each policy recompiles.

     dune exec examples/cutoff_demo.exe *)

module Gen = Workload.Gen
module Driver = Irm.Driver

let run_scenario policy edit =
  let fs = Vfs.memory () in
  let project =
    Gen.create fs
      (Gen.Random_dag { units = 12; max_deps = 3; seed = 2026 })
      Gen.default_profile
  in
  let sources = Gen.sources project in
  let mgr = Driver.create fs in
  let _ = Driver.build mgr ~policy ~sources in
  let victim = Gen.middle_file project in
  Gen.edit project victim edit;
  let stats = Driver.build mgr ~policy ~sources in
  (victim, List.length stats.Driver.st_recompiled)

let () =
  Printf.printf "%-16s %-22s %s\n" "edit" "policy" "units recompiled (of 12)";
  List.iter
    (fun edit ->
      List.iter
        (fun policy ->
          let victim, recompiled = run_scenario policy edit in
          Printf.printf "%-16s %-22s %d   (edited %s)\n" (Gen.edit_name edit)
            (Driver.policy_name policy) recompiled victim)
        [ Driver.Timestamp; Driver.Cutoff; Driver.Selective ])
    [ Gen.Touch; Gen.Impl_change; Gen.Iface_change ];
  print_newline ();
  print_endline
    "The timestamp policy (classical make) recompiles the victim's whole";
  print_endline
    "dependent cone on every edit; cutoff recompiles the cone only when";
  print_endline "the interface pid actually changes."
