(* Quickstart: the visible compiler in five steps.

   Compile two MiniSML units separately, link them type-safely through
   dynamic pids, execute, and demonstrate the cutoff property: an
   implementation-only change leaves the interface pid unchanged, so
   the dependent unit's bin keeps working without recompilation.

     dune exec examples/quickstart.exe *)

let counter_v1 =
  "structure Counter = struct\n\
  \  val start = 100\n\
  \  fun bump n = n + 1\n\
   end"

(* same interface, different behaviour *)
let counter_v2 =
  "structure Counter = struct\n\
  \  val start = 500\n\
  \  fun bump n = n + 10\n\
   end"

let client =
  "structure Client = struct\n\
  \  val value = Counter.bump (Counter.bump Counter.start)\n\
  \  val show = print (\"client sees: \" ^ intToString value ^ \"\\n\")\n\
   end"

let () =
  (* 1. a compilation session (context + initial basis) *)
  let session = Sepcomp.Compile.new_session () in

  (* 2. compile : source × statenv → Unit *)
  let counter =
    Sepcomp.Compile.compile session ~name:"counter.sml" ~source:counter_v1
      ~imports:[]
  in
  Printf.printf "counter.sml  interface pid %s\n"
    (Digestkit.Pid.short counter.Pickle.Binfile.uf_static_pid);

  (* 3. a dependent unit compiles against the *interface* only *)
  let client_unit =
    Sepcomp.Compile.compile session ~name:"client.sml" ~source:client
      ~imports:[ counter ]
  in
  Printf.printf "client.sml   imports %s's exports by pid\n"
    counter.Pickle.Binfile.uf_name;

  (* 4. execute : codeUnit × dynenv → dynenv  (type-safe linkage) *)
  let dynenv = Sepcomp.Compile.execute counter Link.Linker.empty in
  let _ = Sepcomp.Compile.execute client_unit dynenv in

  (* 5. cutoff: recompile Counter with a new implementation — same
     interface pid, so the *old* client bin links and runs unchanged *)
  let counter' =
    Sepcomp.Compile.compile session ~name:"counter.sml" ~source:counter_v2
      ~imports:[]
  in
  Printf.printf "new counter  interface pid %s (%s)\n"
    (Digestkit.Pid.short counter'.Pickle.Binfile.uf_static_pid)
    (if
       Digestkit.Pid.equal counter.Pickle.Binfile.uf_static_pid
         counter'.Pickle.Binfile.uf_static_pid
     then "unchanged: client needs no recompilation"
     else "changed");
  let dynenv' = Sepcomp.Compile.execute counter' Link.Linker.empty in
  let _ = Sepcomp.Compile.execute client_unit dynenv' in
  ()
