(* Metaprogramming with the visible compiler (section 7).

   "The compiler is visible to the user program": this OCaml program
   plays the role of a user application that compiles, links, and
   executes MiniSML programs it constructs at run time — the paper's
   application-program/metaprogramming scenario — then drives the
   interactive loop programmatically the way the Visible Compiler's
   read-eval-print loop does.

     dune exec examples/visible_compiler.exe *)

(* A tiny "query engine": user-supplied predicates are compiled on the
   fly as MiniSML units against a fixed data library. *)

let data_library =
  "structure Data = struct\n\
  \  val items = [3, 14, 15, 92, 65, 35, 89, 79, 32, 38]\n\
  \  fun filter p xs = case xs of nil => nil | x :: r => if p x then x :: \
   filter p r else filter p r\n\
  \  fun sum xs = case xs of nil => 0 | x :: r => x + sum r\n\
   end"

let query_template predicate =
  Printf.sprintf
    "structure Query = struct\n\
    \  val matches = Data.filter (fn x => %s) Data.items\n\
    \  val total = Data.sum matches\n\
     end"
    predicate

let () =
  let session = Sepcomp.Compile.new_session () in
  let data =
    Sepcomp.Compile.compile session ~name:"data.sml" ~source:data_library
      ~imports:[]
  in
  let dynenv = Sepcomp.Compile.execute data Link.Linker.empty in

  Printf.printf "compiling user queries at run time:\n";
  List.iter
    (fun predicate ->
      let source = query_template predicate in
      let query =
        Sepcomp.Compile.compile session ~name:"query.sml" ~source
          ~imports:[ data ]
      in
      let dynenv' = Sepcomp.Compile.execute query dynenv in
      (* pull the result value out through the unit's export pid *)
      let _, pid = List.hd query.Pickle.Binfile.uf_codeunit.Link.Codeunit.cu_exports in
      match Digestkit.Pid.Map.find pid dynenv' with
      | Dynamics.Value.Vrecord fields -> (
        match
          Support.Symbol.Map.find (Support.Symbol.intern "total") fields
        with
        | Dynamics.Value.Vint n ->
          Printf.printf "  sum of items where (%s) = %d\n" predicate n
        | v -> Printf.printf "  unexpected: %s\n" (Dynamics.Value.to_string v))
      | v -> Printf.printf "  unexpected: %s\n" (Dynamics.Value.to_string v))
    [ "x > 50"; "x mod 2 = 0"; "x < 20 orelse x > 80" ];

  (* The same session persists compiled units to byte strings and
     reloads them elsewhere — here, into an interactive loop. *)
  let bytes = Sepcomp.Compile.save session data in
  let repl = Sepcomp.Interactive.create () in
  let reloaded = Pickle.Binfile.read (Sepcomp.Interactive.context repl) bytes in
  let repl_dynenv = Sepcomp.Compile.execute reloaded Link.Linker.empty in
  Sepcomp.Interactive.use repl reloaded repl_dynenv;
  print_endline "driving the interactive loop over the pickled unit:";
  List.iter
    (fun input ->
      let outcome = Sepcomp.Interactive.eval repl input in
      List.iter
        (fun line -> Printf.printf "  - %s\n     %s\n" input line)
        outcome.Sepcomp.Interactive.bindings)
    [
      "Data.sum Data.items";
      "fun squares xs = case xs of nil => nil | x :: r => x * x :: squares r";
      "Data.sum (squares [1, 2, 3, 4])";
    ]
