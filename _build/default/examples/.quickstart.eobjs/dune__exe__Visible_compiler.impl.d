examples/visible_compiler.ml: Digestkit Dynamics Link List Pickle Printf Sepcomp Support
