examples/topsort.ml: Irm Link List Printf Sepcomp String Vfs
