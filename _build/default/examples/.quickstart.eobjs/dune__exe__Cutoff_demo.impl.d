examples/cutoff_demo.ml: Irm List Printf Vfs Workload
