examples/cutoff_demo.mli:
