examples/quickstart.ml: Digestkit Link Pickle Printf Sepcomp
