examples/quickstart.mli:
