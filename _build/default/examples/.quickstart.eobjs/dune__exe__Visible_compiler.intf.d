examples/visible_compiler.mli:
