examples/topsort.mli:
