(** The initial basis: well-known type constructors, constructors
    ([true]/[false]/[nil]/[::]), primitive values, and the standard
    exceptions ([Match], [Bind], [Div], [Fail], [Subscript]).

    Everything here has a [Global] stamp, so the basis hashes and
    pickles identically in every process — a precondition for intrinsic
    pids being stable across machines ("static environments should be
    self-contained", section 4). *)

(** Well-known stamps. *)
val int_stamp : Stamp.t

val bool_stamp : Stamp.t
val string_stamp : Stamp.t
val list_stamp : Stamp.t
val ref_stamp : Stamp.t
val exn_stamp : Stamp.t

(** Well-known types. *)
val int_ty : Types.ty

val bool_ty : Types.ty
val string_ty : Types.ty
val unit_ty : Types.ty
val exn_ty : Types.ty
val list_ty : Types.ty -> Types.ty
val ref_ty : Types.ty -> Types.ty

(** Constructor descriptions. *)
val true_cd : Types.condesc

val false_cd : Types.condesc
val nil_cd : Types.condesc
val cons_cd : Types.condesc

(** Stamps of the predefined exceptions, in declaration order:
    Match, Bind, Div, Fail, Subscript. *)
val exn_stamps : (string * Stamp.t * Types.ty option) list

val match_stamp : Stamp.t
val bind_stamp : Stamp.t
val div_stamp : Stamp.t
val fail_stamp : Stamp.t
val subscript_stamp : Stamp.t

(** [env ()] is the initial static environment.  [register ctx] must be
    called on every new compilation context so the global tycons are
    resolvable. *)
val env : unit -> Types.env

val register : Context.t -> unit
