lib/statics/sigmatch.mli: Context Lang Realize Stamp Support Tast Types
