lib/statics/matchcheck.ml: List String Tast Types
