lib/statics/realize.ml: Array Context List Option Stamp Support Types
