lib/statics/tast.ml: Digestkit Format Prim Support Types
