lib/statics/types.mli: Digestkit Prim Stamp Support
