lib/statics/matchcheck.mli: Tast
