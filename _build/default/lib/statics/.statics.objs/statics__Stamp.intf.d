lib/statics/stamp.mli: Digestkit Format Hashtbl Map Set
