lib/statics/context.mli: Stamp Types
