lib/statics/prim.mli: Format
