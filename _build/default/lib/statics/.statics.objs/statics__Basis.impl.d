lib/statics/basis.ml: Context List Prim Stamp Support Types
