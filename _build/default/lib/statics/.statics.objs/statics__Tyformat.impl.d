lib/statics/tyformat.ml: Char Context Format Printf Stamp Support Types
