lib/statics/types.ml: Array Digestkit List Prim Stamp String Support
