lib/statics/basis.mli: Context Stamp Types
