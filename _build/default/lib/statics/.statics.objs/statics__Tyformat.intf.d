lib/statics/tyformat.mli: Context Format Types
