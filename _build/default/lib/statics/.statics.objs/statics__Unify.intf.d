lib/statics/unify.mli: Context Types
