lib/statics/elaborate.mli: Context Lang Support Tast Types
