lib/statics/sigmatch.ml: Context Fun Lang List Option Realize Stamp Support Tast Tyformat Types Unify
