lib/statics/stamp.ml: Digestkit Format Hashtbl Int Map Set
