lib/statics/elaborate.ml: Basis Context Lang List Matchcheck Option Printf Realize Sigmatch Stamp String Support Tast Tyformat Types Unify
