lib/statics/tast.mli: Format Prim Support Types
