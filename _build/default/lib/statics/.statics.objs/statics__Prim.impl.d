lib/statics/prim.ml: Format Hashtbl List
