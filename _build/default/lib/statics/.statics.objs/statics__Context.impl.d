lib/statics/context.ml: Printf Stamp Types
