lib/statics/unify.ml: Array Context Hashtbl List Printf Stamp Support Types
