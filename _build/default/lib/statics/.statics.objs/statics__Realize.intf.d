lib/statics/realize.mli: Context Stamp Types
