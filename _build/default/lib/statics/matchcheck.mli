(** Match exhaustiveness and redundancy analysis.

    A simplified usefulness check (in the style of Maranget's
    algorithm) over elaborated patterns: datatype constructors carry
    their span, so a column is exhaustive when every tag is covered;
    integers, strings and exception constructors are open-ended, so
    only a variable/wildcard row closes them.

    Used by the elaborator to warn (SML compilers reject or warn; we
    warn) about [nonexhaustive match] and [redundant match]. *)

(** [check rules] — analyse the patterns of a compiled match.
    Returns warnings in source order: [`Redundant i] marks rule [i]
    (0-based) as unreachable; [`Inexhaustive] means a value can slip
    through every rule. *)
val check : Tast.tpat list -> [ `Redundant of int | `Inexhaustive ] list
