module Symbol = Support.Symbol
module Diag = Support.Diag
open Types

let err loc fmt = Diag.error Diag.Elaborate loc fmt

(* The type function denoted by a tycon binding: aliases denote their
   definition, everything else denotes itself. *)
let tyfun_of ctx stamp =
  match Context.find ctx stamp with
  | Some { tyc_defn = Alias scheme; _ } -> scheme
  | Some { tyc_arity; _ } ->
    { arity = tyc_arity; body = Tcon (stamp, List.init tyc_arity (fun i -> Tgen i)) }
  | None -> { arity = 0; body = Tcon (stamp, []) }

let arity_of ctx stamp =
  match Context.find ctx stamp with Some info -> info.tyc_arity | None -> 0

(* Follow alias chains that are pure renamings, to find the underlying
   datatype for datatype-spec matching. *)
let rec chase ctx stamp =
  match Context.find ctx stamp with
  | Some { tyc_defn = Alias { arity; body = Tcon (target, args) }; _ } ->
    let is_eta =
      List.length args = arity
      && List.for_all2 (fun arg i -> arg = Tgen i) args (List.init arity Fun.id)
    in
    if is_eta then chase ctx target else stamp
  | _ -> stamp

let equal_tyfun ctx a b =
  a.arity = b.arity && Unify.equal_ty ctx a.body b.body

(* ------------------------------------------------------------------ *)
(* Instantiation                                                       *)
(* ------------------------------------------------------------------ *)

let instantiate ctx sig_info =
  let pairs =
    List.map (fun stamp -> (stamp, Stamp.fresh ())) sig_info.sig_flex
  in
  let rz =
    List.fold_left
      (fun rz (old_stamp, fresh_stamp) ->
        match Context.find ctx old_stamp with
        | Some info ->
          Realize.add_tycon_rename rz old_stamp ~arity:info.tyc_arity fresh_stamp
        | None -> Realize.add_stamp_rename rz old_stamp fresh_stamp)
      Realize.empty pairs
  in
  (* Register the fresh tycons' (substituted) definitions. *)
  List.iter
    (fun (old_stamp, fresh_stamp) ->
      match Context.find ctx old_stamp with
      | Some info ->
        Context.register ctx fresh_stamp (Realize.subst_tycon_info ctx rz info)
      | None -> ())
    pairs;
  (Realize.subst_env ctx rz sig_info.sig_env, List.map snd pairs)

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

(* Pass 1: realize every flexible stamp by the correspondingly-named
   actual component. *)
let rec build_realization ctx ~loc flexset rz sig_env actual =
  let rz =
    Symbol.Map.fold
      (fun name spec_stamp rz ->
        if Stamp.Set.mem spec_stamp flexset then begin
          match Symbol.Map.find_opt name actual.tycons with
          | None -> err loc "signature mismatch: missing type %a" Symbol.pp name
          | Some actual_stamp ->
            let spec_arity = arity_of ctx spec_stamp in
            let actual_tf = tyfun_of ctx actual_stamp in
            if actual_tf.arity <> spec_arity then
              err loc "signature mismatch: type %a has arity %d, expected %d"
                Symbol.pp name actual_tf.arity spec_arity
            else Realize.add_tyfun rz spec_stamp actual_tf
        end
        else rz)
      sig_env.tycons rz
  in
  (* exception identities *)
  let rz =
    Symbol.Map.fold
      (fun name info rz ->
        match info.vi_kind with
        | Vexn spec_stamp when Stamp.Set.mem spec_stamp flexset -> (
          match Symbol.Map.find_opt name actual.vals with
          | Some { vi_kind = Vexn actual_stamp; _ } ->
            Realize.add_stamp_rename rz spec_stamp actual_stamp
          | Some _ | None ->
            err loc "signature mismatch: missing exception %a" Symbol.pp name)
        | _ -> rz)
      sig_env.vals rz
  in
  (* substructures *)
  Symbol.Map.fold
    (fun name spec_str rz ->
      match Symbol.Map.find_opt name actual.strs with
      | None -> err loc "signature mismatch: missing structure %a" Symbol.pp name
      | Some actual_str ->
        let rz =
          if Stamp.Set.mem spec_str.str_stamp flexset then
            Realize.add_stamp_rename rz spec_str.str_stamp actual_str.str_stamp
          else rz
        in
        build_realization ctx ~loc flexset rz spec_str.str_env actual_str.str_env)
    sig_env.strs rz

(* Pass 2: check every spec and build the transparent result. *)
let rec check_and_thin ctx ~loc rz sig_env actual =
  let result = ref empty_env in
  let thinning = ref [] in
  (* types *)
  Symbol.Map.iter
    (fun name spec_stamp ->
      match Symbol.Map.find_opt name actual.tycons with
      | None -> err loc "signature mismatch: missing type %a" Symbol.pp name
      | Some actual_stamp ->
        let spec_tf =
          match Realize.find_tyfun rz spec_stamp with
          | Some tf -> tf
          | None ->
            (* rigid spec (manifest alias or global) *)
            let tf = tyfun_of ctx spec_stamp in
            { tf with body = Realize.subst_ty ctx rz tf.body }
        in
        let actual_tf = tyfun_of ctx actual_stamp in
        if not (equal_tyfun ctx spec_tf actual_tf) then
          err loc "signature mismatch: type %a does not agree with its spec"
            Symbol.pp name;
        (* datatype specs additionally pin down the constructors *)
        (match Context.find ctx spec_stamp with
        | Some { tyc_defn = Data spec_cds; _ } -> (
          let target = chase ctx actual_stamp in
          match Context.find ctx target with
          | Some { tyc_defn = Data actual_cds; _ } ->
            if List.length spec_cds <> List.length actual_cds then
              err loc "signature mismatch: datatype %a has wrong constructors"
                Symbol.pp name;
            List.iter2
              (fun spec_cd actual_cd ->
                if not (Symbol.equal spec_cd.cd_name actual_cd.cd_name) then
                  err loc
                    "signature mismatch: datatype %a constructor %a vs %a"
                    Symbol.pp name Symbol.pp spec_cd.cd_name Symbol.pp
                    actual_cd.cd_name;
                match
                  ( Option.map (Realize.subst_ty ctx rz) spec_cd.cd_arg,
                    actual_cd.cd_arg )
                with
                | None, None -> ()
                | Some a, Some b when Unify.equal_ty ctx a b -> ()
                | _ ->
                  err loc
                    "signature mismatch: constructor %a of datatype %a has a \
                     different argument type"
                    Symbol.pp spec_cd.cd_name Symbol.pp name)
              spec_cds actual_cds
          | _ ->
            err loc "signature mismatch: %a must be a datatype" Symbol.pp name)
        | _ -> ());
        result := bind_tycon name actual_stamp !result)
    sig_env.tycons;
  (* values *)
  Symbol.Map.iter
    (fun name spec_info ->
      match Symbol.Map.find_opt name actual.vals with
      | None -> err loc "signature mismatch: missing value %a" Symbol.pp name
      | Some actual_info -> (
        let spec_scheme = Realize.subst_scheme ctx rz spec_info.vi_scheme in
        (match spec_info.vi_kind with
        | Vplain ->
          if not (Unify.more_general ctx actual_info.vi_scheme spec_scheme) then
            err loc
              "signature mismatch: value %a has type %s, less general than \
               spec %s"
              Symbol.pp name
              (Tyformat.scheme_to_string ctx actual_info.vi_scheme)
              (Tyformat.scheme_to_string ctx spec_scheme)
        | Vcon (_, spec_cd) -> (
          match actual_info.vi_kind with
          | Vcon (_, actual_cd) ->
            if spec_cd.cd_tag <> actual_cd.cd_tag
               || spec_cd.cd_span <> actual_cd.cd_span
            then
              err loc "signature mismatch: constructor %a representation"
                Symbol.pp name
          | Vplain | Vexn _ ->
            err loc "signature mismatch: %a must be a datatype constructor"
              Symbol.pp name)
        | Vexn _ -> (
          match actual_info.vi_kind with
          | Vexn _ ->
            if not (Unify.equal_scheme ctx spec_scheme actual_info.vi_scheme)
            then
              err loc "signature mismatch: exception %a argument type"
                Symbol.pp name
          | Vplain | Vcon _ ->
            err loc "signature mismatch: %a must be an exception" Symbol.pp name));
        let entry =
          {
            vi_scheme = spec_scheme;
            vi_kind = actual_info.vi_kind;
            vi_addr = actual_info.vi_addr;
          }
        in
        result := bind_val name entry !result;
        (* runtime field needed unless the value is a static constructor *)
        (match actual_info.vi_kind with
        | Vplain | Vexn _ -> thinning := (name, Tast.ThinVal) :: !thinning
        | Vcon _ -> ())))
    sig_env.vals;
  (* substructures *)
  Symbol.Map.iter
    (fun name spec_str ->
      match Symbol.Map.find_opt name actual.strs with
      | None -> err loc "signature mismatch: missing structure %a" Symbol.pp name
      | Some actual_str ->
        let sub_env, sub_thin =
          check_and_thin ctx ~loc rz spec_str.str_env actual_str.str_env
        in
        result :=
          bind_str name
            {
              str_stamp = actual_str.str_stamp;
              str_env = sub_env;
              str_addr = actual_str.str_addr;
            }
            !result;
        thinning := (name, Tast.ThinStr sub_thin) :: !thinning)
    sig_env.strs;
  (!result, List.rev !thinning)

let match_signature ctx ~loc sig_info actual =
  let flexset = Stamp.Set.of_list sig_info.sig_flex in
  let rz =
    build_realization ctx ~loc flexset Realize.empty sig_info.sig_env actual
  in
  let result, thinning = check_and_thin ctx ~loc rz sig_info.sig_env actual in
  (rz, result, thinning)

let opaque_ascribe ctx ~loc sig_info actual =
  let _rz, _transparent, thinning = match_signature ctx ~loc sig_info actual in
  let instance, _fresh = instantiate ctx sig_info in
  (instance, thinning)

(* ------------------------------------------------------------------ *)
(* where type                                                          *)
(* ------------------------------------------------------------------ *)

let where_type ctx ~loc sig_info path tyfun =
  let open Lang.Ast in
  (* resolve the path inside the signature body *)
  let rec resolve env quals =
    match quals with
    | [] -> env
    | q :: rest -> (
      match Symbol.Map.find_opt q env.strs with
      | Some str -> resolve str.str_env rest
      | None ->
        err loc "where type: unknown structure %a in %a" Symbol.pp q
          Lang.Ast.pp_path path)
  in
  let holder = resolve sig_info.sig_env path.qualifiers in
  let stamp =
    match Symbol.Map.find_opt path.base holder.tycons with
    | Some stamp -> stamp
    | None -> err loc "where type: unknown type %a" Lang.Ast.pp_path path
  in
  if not (List.exists (Stamp.equal stamp) sig_info.sig_flex) then
    err loc "where type: %a is not a flexible type of the signature"
      Lang.Ast.pp_path path;
  (match Context.find ctx stamp with
  | Some { tyc_arity; tyc_defn = Abstract; _ } ->
    if tyc_arity <> tyfun.arity then
      err loc "where type: arity mismatch for %a" Lang.Ast.pp_path path
  | Some _ -> err loc "where type: %a is not abstract" Lang.Ast.pp_path path
  | None -> err loc "where type: %a has no definition" Lang.Ast.pp_path path);
  let rz = Realize.add_tyfun Realize.empty stamp tyfun in
  {
    sig_stamp = Stamp.fresh ();
    sig_env = Realize.subst_env ctx rz sig_info.sig_env;
    sig_flex =
      List.filter (fun s -> not (Stamp.equal s stamp)) sig_info.sig_flex;
  }

(* ------------------------------------------------------------------ *)
(* Functor application                                                 *)
(* ------------------------------------------------------------------ *)

let apply_functor ctx ~loc fct actual_arg =
  let param_rz, _result, thinning =
    match_signature ctx ~loc fct.fct_param_sig actual_arg
  in
  (* Re-key the parameter realization from the signature's flexible
     stamps to the instantiated parameter stamps the body refers to. *)
  let body_rz =
    List.fold_left2
      (fun rz sig_stamp param_stamp ->
        match Realize.find_tyfun param_rz sig_stamp with
        | Some tf -> Realize.add_tyfun rz param_stamp tf
        | None ->
          let renamed = Realize.rename_stamp param_rz sig_stamp in
          if Stamp.equal renamed sig_stamp then rz
          else Realize.add_stamp_rename rz param_stamp renamed)
      Realize.empty fct.fct_param_sig.sig_flex fct.fct_param_stamps
  in
  (* Generativity: fresh stamps for everything the body creates. *)
  let gen_pairs = List.map (fun g -> (g, Stamp.fresh ())) fct.fct_body_gen in
  let body_rz =
    List.fold_left
      (fun rz (g, g') ->
        match Context.find ctx g with
        | Some info -> Realize.add_tycon_rename rz g ~arity:info.tyc_arity g'
        | None -> Realize.add_stamp_rename rz g g')
      body_rz gen_pairs
  in
  List.iter
    (fun (g, g') ->
      match Context.find ctx g with
      | Some info ->
        Context.register ctx g' (Realize.subst_tycon_info ctx body_rz info)
      | None -> ())
    gen_pairs;
  (Realize.subst_env ctx body_rz fct.fct_body, thinning)
