(** Realizations: substitutions over static environments.

    A realization maps flexible type-constructor stamps to type functions
    and renames structure/exception stamps.  It is the engine behind the
    three generative operations of the module system:

    - signature instantiation (functor parameters, opaque ascription)
      maps every flexible stamp to a fresh one;
    - signature matching maps every flexible stamp to the matching
      component of the actual structure;
    - functor application composes the parameter realization with fresh
      copies of the body's generative stamps.

    Substituting a realization through an environment is exactly how
    transparent type propagation (the paper's figure 1: [FSort.t = int
    list]) crosses functor boundaries. *)

type t

val empty : t

(** [add_tyfun rz stamp tyfun] realizes a flexible tycon as a type
    function ([Tgen]s are its parameters). *)
val add_tyfun : t -> Stamp.t -> Types.scheme -> t

(** [add_tycon_rename rz s s'] realizes tycon [s] as tycon [s'] of the
    same arity (an eta type function). *)
val add_tycon_rename : t -> Stamp.t -> arity:int -> Stamp.t -> t

(** [add_stamp_rename rz s s'] renames a structure or exception stamp. *)
val add_stamp_rename : t -> Stamp.t -> Stamp.t -> t

val find_tyfun : t -> Stamp.t -> Types.scheme option
val rename_stamp : t -> Stamp.t -> Stamp.t

(** [is_empty rz] — substitution would be the identity. *)
val is_empty : t -> bool

(** [subst_ty ctx rz ty].  When a realized constructor is applied, the
    type function is beta-reduced.  [ctx] is consulted only to register
    alias stamps created for non-eta realizations in binding positions
    (see {!subst_env}). *)
val subst_ty : Context.t -> t -> Types.ty -> Types.ty

val subst_scheme : Context.t -> t -> Types.scheme -> Types.scheme

(** [subst_tycon_binding ctx rz stamp] — the stamp a tycon *binding*
    becomes: renamed for eta realizations; for a general type function a
    fresh alias stamp is created (memoised per realization) and
    registered in [ctx]. *)
val subst_tycon_binding : Context.t -> t -> Stamp.t -> Stamp.t

val subst_tycon_info : Context.t -> t -> Types.tycon_info -> Types.tycon_info
val subst_env : Context.t -> t -> Types.env -> Types.env
val subst_sig : Context.t -> t -> Types.sig_info -> Types.sig_info
val subst_fct : Context.t -> t -> Types.fct_info -> Types.fct_info

(** [reachable_local_stamps ctx env ~lo ~hi] — every [Local] stamp with
    counter in [(lo, hi]] reachable from [env] (through value schemes,
    tycon definitions, structures, signatures, functor bodies and
    exception identities), in deterministic first-encounter order.  Used
    to delimit the generative stamps of a functor body and the exports
    of a unit. *)
val reachable_local_stamps :
  Context.t -> Types.env -> lo:int -> hi:int -> Stamp.t list

(** [reachable_stamps ctx env] — every stamp reachable from [env], in
    deterministic first-encounter order (the canonical traversal shared
    by hashing, export numbering and pickling). *)
val reachable_stamps : Context.t -> Types.env -> Stamp.t list
