type t = Types.tycon_info Stamp.Table.t

let create () = Stamp.Table.create 256

let register ctx stamp info =
  if not (Stamp.Table.mem ctx stamp) then Stamp.Table.add ctx stamp info

let register_replace ctx stamp info = Stamp.Table.replace ctx stamp info
let find ctx stamp = Stamp.Table.find_opt ctx stamp

let find_exn ctx stamp =
  match Stamp.Table.find_opt ctx stamp with
  | Some info -> info
  | None ->
    invalid_arg
      (Printf.sprintf "Context.find_exn: unregistered stamp %s"
         (Stamp.to_string stamp))

let size = Stamp.Table.length
let stamps ctx = Stamp.Table.fold (fun stamp _ acc -> stamp :: acc) ctx []
