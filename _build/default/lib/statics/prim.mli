(** Built-in primitive operations of the initial basis. *)

type t =
  (* integer arithmetic *)
  | Padd
  | Psub
  | Pmul
  | Pdiv
  | Pmod
  | Pneg
  (* comparisons; [Peq]/[Pneq] are polymorphic structural equality *)
  | Plt
  | Ple
  | Pgt
  | Pge
  | Peq
  | Pneq
  (* strings *)
  | Pconcat
  | Psize
  | Pint_to_string
  | Pstring_to_int  (** partial: raises [Fail] on malformed input *)
  (* booleans *)
  | Pnot
  (* references *)
  | Pref
  | Pderef
  | Passign
  (* i/o and misc *)
  | Pprint
  | Pexit

(** Stable name used for pickling and for the basis environment entry. *)
val name : t -> string

(** Inverse of {!name}. *)
val of_name : string -> t option

(** All primitives, for exhaustive registration in the basis. *)
val all : t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
