(** Stamps: unique identities for "significant objects".

    Following section 4 of the paper, every type constructor, structure,
    signature, functor and exception gets a stamp.  Stamps index the
    shared nodes of environment DAGs; pickling serialises references
    between significant objects as stamp references (which also makes
    recursive datatypes acyclic on disk), and the intrinsic-pid hash
    alpha-converts them.

    Three provenances:
    - [Global] — initial-basis objects with well-known identities
      ([int], [bool], [list], …);
    - [Local] — provisional stamps created during this process's
      compilations ("pid(1)" of section 5);
    - [External] — objects owned by another compilation unit, identified
      by that unit's intrinsic pid and the object's index in the unit's
      canonical export traversal. *)

type t =
  | Global of int
  | Local of int
  | External of Digestkit.Pid.t * int

(** A fresh provisional stamp; process-unique. *)
val fresh : unit -> t

(** [local_counter ()] is the current provisional-stamp counter, used to
    delimit the stamps generated while elaborating a functor body. *)
val local_counter : unit -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
