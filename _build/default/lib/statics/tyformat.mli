(** Pretty-printing of semantic types, for diagnostics and the REPL. *)

(** [pp_ty ctx ppf ty].  Unification variables print as ['_N]; bound
    scheme variables as ['a], ['b], …; stamped constructors by their
    declared name. *)
val pp_ty : Context.t -> Format.formatter -> Types.ty -> unit

val ty_to_string : Context.t -> Types.ty -> string
val pp_scheme : Context.t -> Format.formatter -> Types.scheme -> unit
val scheme_to_string : Context.t -> Types.scheme -> string
