module Symbol = Support.Symbol
open Types

let int_stamp = Stamp.Global 0
let bool_stamp = Stamp.Global 1
let string_stamp = Stamp.Global 2
let list_stamp = Stamp.Global 3
let ref_stamp = Stamp.Global 4
let exn_stamp = Stamp.Global 5

(* Exceptions use the stamp space 100… so more tycons can be added
   before them without renumbering. *)
let match_stamp = Stamp.Global 100
let bind_stamp = Stamp.Global 101
let div_stamp = Stamp.Global 102
let fail_stamp = Stamp.Global 103
let subscript_stamp = Stamp.Global 104

let int_ty = Tcon (int_stamp, [])
let bool_ty = Tcon (bool_stamp, [])
let string_ty = Tcon (string_stamp, [])
let unit_ty = Ttuple []
let exn_ty = Tcon (exn_stamp, [])
let list_ty elem = Tcon (list_stamp, [ elem ])
let ref_ty elem = Tcon (ref_stamp, [ elem ])

let false_cd =
  { cd_name = Symbol.intern "false"; cd_arg = None; cd_tag = 0; cd_span = 2 }

let true_cd =
  { cd_name = Symbol.intern "true"; cd_arg = None; cd_tag = 1; cd_span = 2 }

let nil_cd =
  { cd_name = Symbol.intern "nil"; cd_arg = None; cd_tag = 0; cd_span = 2 }

let cons_cd =
  {
    cd_name = Symbol.intern "::";
    cd_arg = Some (Ttuple [ Tgen 0; Tcon (list_stamp, [ Tgen 0 ]) ]);
    cd_tag = 1;
    cd_span = 2;
  }

let exn_stamps =
  [
    ("Match", match_stamp, None);
    ("Bind", bind_stamp, None);
    ("Div", div_stamp, None);
    ("Fail", fail_stamp, Some string_ty);
    ("Subscript", subscript_stamp, None);
  ]

let tycon_infos =
  [
    (int_stamp, { tyc_name = Symbol.intern "int"; tyc_arity = 0; tyc_defn = Abstract });
    ( bool_stamp,
      {
        tyc_name = Symbol.intern "bool";
        tyc_arity = 0;
        tyc_defn = Data [ false_cd; true_cd ];
      } );
    ( string_stamp,
      { tyc_name = Symbol.intern "string"; tyc_arity = 0; tyc_defn = Abstract } );
    ( list_stamp,
      {
        tyc_name = Symbol.intern "list";
        tyc_arity = 1;
        tyc_defn = Data [ nil_cd; cons_cd ];
      } );
    (ref_stamp, { tyc_name = Symbol.intern "ref"; tyc_arity = 1; tyc_defn = Abstract });
    (exn_stamp, { tyc_name = Symbol.intern "exn"; tyc_arity = 0; tyc_defn = Abstract });
  ]

let register ctx =
  List.iter (fun (stamp, info) -> Context.register ctx stamp info) tycon_infos

(* Type schemes of the primitives. *)
let prim_scheme prim =
  let ii_i = monotype (Tarrow (Ttuple [ int_ty; int_ty ], int_ty)) in
  let ii_b = monotype (Tarrow (Ttuple [ int_ty; int_ty ], bool_ty)) in
  let a = Tgen 0 in
  match prim with
  | Prim.Padd | Prim.Psub | Prim.Pmul | Prim.Pdiv | Prim.Pmod -> ii_i
  | Prim.Pneg -> monotype (Tarrow (int_ty, int_ty))
  | Prim.Plt | Prim.Ple | Prim.Pgt | Prim.Pge -> ii_b
  | Prim.Peq | Prim.Pneq -> { arity = 1; body = Tarrow (Ttuple [ a; a ], bool_ty) }
  | Prim.Pconcat -> monotype (Tarrow (Ttuple [ string_ty; string_ty ], string_ty))
  | Prim.Psize -> monotype (Tarrow (string_ty, int_ty))
  | Prim.Pint_to_string -> monotype (Tarrow (int_ty, string_ty))
  | Prim.Pstring_to_int -> monotype (Tarrow (string_ty, int_ty))
  | Prim.Pnot -> monotype (Tarrow (bool_ty, bool_ty))
  | Prim.Pref -> { arity = 1; body = Tarrow (a, ref_ty a) }
  | Prim.Pderef -> { arity = 1; body = Tarrow (ref_ty a, a) }
  | Prim.Passign -> { arity = 1; body = Tarrow (Ttuple [ ref_ty a; a ], unit_ty) }
  | Prim.Pprint -> monotype (Tarrow (string_ty, unit_ty))
  | Prim.Pexit -> { arity = 1; body = Tarrow (int_ty, a) }

let env () =
  let env = empty_env in
  (* tycons *)
  let env =
    List.fold_left
      (fun env (stamp, info) -> bind_tycon info.tyc_name stamp env)
      env tycon_infos
  in
  (* unit as a type abbreviation is spelled via the empty tuple; there is
     no [unit] tycon, but we bind the name for convenience. *)
  (* datatype constructors *)
  let bind_con tystamp params cd env =
    let result = Tcon (tystamp, List.init params (fun i -> Tgen i)) in
    let body =
      match cd.cd_arg with
      | None -> result
      | Some arg -> Tarrow (arg, result)
    in
    bind_val cd.cd_name
      {
        vi_scheme = { arity = params; body };
        vi_kind = Vcon (tystamp, cd);
        vi_addr = AdNone;
      }
      env
  in
  let env = bind_con bool_stamp 0 false_cd env in
  let env = bind_con bool_stamp 0 true_cd env in
  let env = bind_con list_stamp 1 nil_cd env in
  let env = bind_con list_stamp 1 cons_cd env in
  (* standard exceptions; their runtime identities are provided by the
     dynamic basis under the same names *)
  let env =
    List.fold_left
      (fun env (name, stamp, arg) ->
        let sym = Symbol.intern name in
        let body =
          match arg with None -> exn_ty | Some ty -> Tarrow (ty, exn_ty)
        in
        bind_val sym
          {
            vi_scheme = monotype body;
            vi_kind = Vexn stamp;
            vi_addr = AdBasisExn sym;
          }
          env)
      env exn_stamps
  in
  (* primitives *)
  let env =
    List.fold_left
      (fun env prim ->
        bind_val
          (Symbol.intern (Prim.name prim))
          { vi_scheme = prim_scheme prim; vi_kind = Vplain; vi_addr = AdPrim prim }
          env)
      env Prim.all
  in
  (* pervasive basis structures: qualified names over the same
     primitives (their addresses are absolute, so no runtime record is
     needed) *)
  let prim_val name prim acc =
    bind_val (Symbol.intern name)
      { vi_scheme = prim_scheme prim; vi_kind = Vplain; vi_addr = AdPrim prim }
      acc
  in
  let basis_structure stamp_id name bindings tycons =
    let str_env =
      List.fold_left (fun acc f -> f acc) empty_env bindings
      |> fun e ->
      List.fold_left (fun acc (n, s) -> bind_tycon (Symbol.intern n) s acc) e tycons
    in
    bind_str (Symbol.intern name)
      {
        str_stamp = Stamp.Global stamp_id;
        str_env;
        str_addr = AdNone;
      }
  in
  let env =
    basis_structure 200 "Int"
      [
        prim_val "toString" Prim.Pint_to_string;
        prim_val "fromString" Prim.Pstring_to_int;
      ]
      [ ("int", int_stamp) ]
      env
  in
  let env =
    basis_structure 201 "String"
      [
        prim_val "size" Prim.Psize;
        prim_val "concat" Prim.Pconcat;
      ]
      [ ("string", string_stamp) ]
      env
  in
  let env =
    basis_structure 202 "Bool"
      [ prim_val "not" Prim.Pnot ]
      [ ("bool", bool_stamp) ]
      env
  in
  env
