open Tast

(* The algorithm works on pattern matrices.  [useful matrix row] asks:
   can a value vector match [row] without matching any row of [matrix]?
   Exhaustiveness = wildcards not useful after all rows;
   redundancy of row i = row i not useful against rows 0..i-1. *)

(* heads a pattern can take after stripping binders *)
let rec strip = function
  | TPas (_, p) -> strip p
  | p -> p

(* The constructors appearing at the head of a column. *)
type head =
  | Hint of int
  | Hstring of string
  | Hcon of int * int * bool  (** tag, span, has_arg *)
  | Htuple of int
  | Hexn of Types.addr  (** identified by the constructor's address *)
  | Href

let head_of pat =
  match strip pat with
  | TPwild | TPvar _ -> None
  | TPint n -> Some (Hint n)
  | TPstring s -> Some (Hstring s)
  | TPcon (rep, arg) ->
    Some (Hcon (rep.Types.rep_tag, rep.Types.rep_span, arg <> None))
  | TPtuple ps -> Some (Htuple (List.length ps))
  | TPexn (addr, _) -> Some (Hexn addr)
  | TPref _ -> Some Href
  | TPas _ -> assert false

(* sub-patterns a head exposes *)
let sub_arity = function
  | Hint _ | Hstring _ -> 0
  | Hcon (_, _, has_arg) -> if has_arg then 1 else 0
  | Htuple n -> n
  | Hexn _ -> 1 (* conservatively expose the argument slot *)
  | Href -> 1

let head_equal a b =
  match (a, b) with
  | Hint x, Hint y -> x = y
  | Hstring x, Hstring y -> String.equal x y
  | Hcon (t1, _, _), Hcon (t2, _, _) -> t1 = t2
  | Htuple n, Htuple m -> n = m
  | Hexn a, Hexn b ->
    (* syntactically identical addresses denote the same constructor;
       distinct addresses are treated as distinct, which can only
       under-report redundancy — never falsely report it *)
    a = b
  | Href, Href -> true
  | _ -> false

(* specialize a row by a head; None if the row cannot match it *)
let specialize_row head row =
  match row with
  | [] -> None
  | first :: rest -> (
    match strip first with
    | TPwild | TPvar _ ->
      Some (List.init (sub_arity head) (fun _ -> TPwild) @ rest)
    | TPint n -> (
      match head with Hint m when n = m -> Some rest | _ -> None)
    | TPstring s -> (
      match head with
      | Hstring s' when String.equal s s' -> Some rest
      | _ -> None)
    | TPcon (rep, arg) -> (
      match head with
      | Hcon (tag, _, _) when rep.Types.rep_tag = tag ->
        Some ((match arg with Some p -> [ p ] | None -> []) @ rest)
      | _ -> None)
    | TPtuple ps -> (
      match head with
      | Htuple n when List.length ps = n -> Some (ps @ rest)
      | _ -> None)
    | TPexn (addr, arg) -> (
      match head with
      | Hexn addr' when addr = addr' ->
        Some ((match arg with Some p -> [ p ] | None -> [ TPwild ]) @ rest)
      | _ -> None)
    | TPref p -> (
      match head with Href -> Some (p :: rest) | _ -> None)
    | TPas _ -> assert false)

(* default matrix: rows whose first column is a wildcard/variable *)
let default_row row =
  match row with
  | [] -> None
  | first :: rest -> (
    match strip first with
    | TPwild | TPvar _ -> Some rest
    | TPint _ | TPstring _ | TPcon _ | TPtuple _ | TPexn _ | TPref _ -> None
    | TPas _ -> assert false)

(* the heads present in the first column of a matrix/row set *)
let column_heads rows =
  List.filter_map (fun row -> match row with [] -> None | p :: _ -> head_of p) rows

(* does the head set cover its type completely? *)
let complete_signature heads =
  match heads with
  | [] -> false
  | Hcon (_, span, _) :: _ ->
    let tags =
      List.sort_uniq compare
        (List.filter_map (function Hcon (t, _, _) -> Some t | _ -> None) heads)
    in
    List.length tags = span
  | Htuple _ :: _ -> true (* a single tuple shape covers the type *)
  | Href :: _ -> true
  | Hint _ :: _ | Hstring _ :: _ | Hexn _ :: _ -> false

(* all heads we must try when the column's signature is complete *)
let distinct_heads heads =
  List.fold_left
    (fun acc h -> if List.exists (head_equal h) acc then acc else h :: acc)
    [] heads
  |> List.rev

let rec useful matrix row =
  match row with
  | [] -> matrix = []
  | first :: _ -> (
    match head_of first with
    | Some head -> (
      match specialize_row head row with
      | None -> assert false
      | Some srow ->
        useful (List.filter_map (specialize_row head) matrix) srow)
    | None ->
      (* wildcard at the head of the row *)
      let heads = column_heads matrix in
      if complete_signature heads then
        List.exists
          (fun head ->
            match specialize_row head row with
            | Some srow ->
              useful (List.filter_map (specialize_row head) matrix) srow
            | None -> false)
          (distinct_heads heads)
      else
        (* incomplete signature: the default matrix decides *)
        let dmatrix = List.filter_map default_row matrix in
        let drow = match default_row row with Some r -> r | None -> assert false in
        useful dmatrix drow)

let check pats =
  let warnings = ref [] in
  (* redundancy: each row against its predecessors *)
  List.iteri
    (fun i pat ->
      let previous = List.filteri (fun j _ -> j < i) pats in
      if not (useful (List.map (fun p -> [ p ]) previous) [ pat ]) then
        warnings := `Redundant i :: !warnings)
    pats;
  (* exhaustiveness: is a wildcard still useful after all rows? *)
  if useful (List.map (fun p -> [ p ]) pats) [ TPwild ] then
    warnings := `Inexhaustive :: !warnings;
  List.rev !warnings
