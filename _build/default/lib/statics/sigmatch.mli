(** Signature instantiation, signature matching, [where type]
    refinement, and functor application.

    These are the static-semantics operations the paper leans on:
    transparent matching propagates actual types into the result
    (figure 1), opaque ascription and functor application are generative
    (fresh stamps), and [apply_functor] re-derives a functor's result
    environment from an argument without touching the functor's source —
    which is what lets functors cross compilation-unit boundaries. *)

module Loc := Support.Loc

(** [instantiate ctx sig_info] — a fresh instance of the signature:
    every flexible stamp replaced by a new one (tycon definitions
    substituted and registered).  Returns the instance environment and
    the fresh stamps, positionally parallel to [sig_info.sig_flex]. *)
val instantiate : Context.t -> Types.sig_info -> Types.env * Stamp.t list

(** [match_signature ctx ~loc sig_info actual] — check that [actual]
    matches the signature.  Returns:
    - the realization of the signature's flexible stamps by actual
      components,
    - the transparent result environment (spec-shaped, actual types
      propagated, actual addresses), and
    - the thinning coercion describing which runtime fields survive.

    Raises {!Support.Diag.Error} (phase [Elaborate]) on mismatch. *)
val match_signature :
  Context.t ->
  loc:Loc.t ->
  Types.sig_info ->
  Types.env ->
  Realize.t * Types.env * Tast.thinning

(** [opaque_ascribe ctx ~loc sig_info actual] — matching as above, but
    the result environment is a fresh instance of the signature
    (abstract types are new stamps: generativity of [:>]). *)
val opaque_ascribe :
  Context.t ->
  loc:Loc.t ->
  Types.sig_info ->
  Types.env ->
  Types.env * Tast.thinning

(** [where_type ctx ~loc sig_info path tyfun] — refine a flexible
    abstract type of the signature to a manifest type function. *)
val where_type :
  Context.t ->
  loc:Loc.t ->
  Types.sig_info ->
  Lang.Ast.path ->
  Types.scheme ->
  Types.sig_info

(** [apply_functor ctx ~loc fct actual_arg] — the result environment of
    applying [fct] to [actual_arg]: parameter stamps realized by the
    argument's components, generative body stamps refreshed.  Also
    returns the thinning coercing the argument to the parameter
    signature. *)
val apply_functor :
  Context.t -> loc:Loc.t -> Types.fct_info -> Types.env -> Types.env * Tast.thinning
