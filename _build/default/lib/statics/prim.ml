type t =
  | Padd
  | Psub
  | Pmul
  | Pdiv
  | Pmod
  | Pneg
  | Plt
  | Ple
  | Pgt
  | Pge
  | Peq
  | Pneq
  | Pconcat
  | Psize
  | Pint_to_string
  | Pstring_to_int
  | Pnot
  | Pref
  | Pderef
  | Passign
  | Pprint
  | Pexit

let name = function
  | Padd -> "+"
  | Psub -> "-"
  | Pmul -> "*"
  | Pdiv -> "div"
  | Pmod -> "mod"
  | Pneg -> "~"
  | Plt -> "<"
  | Ple -> "<="
  | Pgt -> ">"
  | Pge -> ">="
  | Peq -> "="
  | Pneq -> "<>"
  | Pconcat -> "^"
  | Psize -> "size"
  | Pint_to_string -> "intToString"
  | Pstring_to_int -> "stringToInt"
  | Pnot -> "not"
  | Pref -> "ref"
  | Pderef -> "!"
  | Passign -> ":="
  | Pprint -> "print"
  | Pexit -> "exit"

let all =
  [
    Padd; Psub; Pmul; Pdiv; Pmod; Pneg; Plt; Ple; Pgt; Pge; Peq; Pneq;
    Pconcat; Psize; Pint_to_string; Pstring_to_int; Pnot; Pref; Pderef;
    Passign; Pprint; Pexit;
  ]

let of_name =
  let table = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.add table (name p) p) all;
  fun n -> Hashtbl.find_opt table n

let equal = ( = )
let pp ppf p = Format.pp_print_string ppf (name p)
