(** The compilation context: a stamp-indexed table of type-constructor
    definitions.

    Section 4 of the paper builds, "for each environment, mappings from
    stamps to objects" so that rehydration and hashing can resolve
    references efficiently.  We centralise that: every compilation
    session owns one monotonically growing context; elaboration
    registers the tycons it creates, and rehydrating a bin file
    registers the external tycons it carries. *)

type t

val create : unit -> t

(** [register ctx stamp info] records the definition of [stamp].
    Registering the same stamp twice is allowed only with an equal
    definition shape (it happens when two units import the same third
    unit); the first registration wins. *)
val register : t -> Stamp.t -> Types.tycon_info -> unit

(** [register_replace ctx stamp info] overwrites a previous registration.
    Used only by datatype elaboration, which provisionally registers an
    [Abstract] placeholder while elaborating the (possibly mutually
    recursive) constructor argument types. *)
val register_replace : t -> Stamp.t -> Types.tycon_info -> unit

val find : t -> Stamp.t -> Types.tycon_info option

(** [find_exn] raises [Not_found] with a readable message via
    [Invalid_argument] if the stamp was never registered — that would be
    a linkage bug (a stale bin file), so callers treat it as fatal. *)
val find_exn : t -> Stamp.t -> Types.tycon_info

(** Number of registered stamps, for the census bench. *)
val size : t -> int

(** All registered stamps, for tests. *)
val stamps : t -> Stamp.t list
