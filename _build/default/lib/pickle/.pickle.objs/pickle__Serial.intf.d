lib/pickle/serial.mli: Buf Digestkit Statics
