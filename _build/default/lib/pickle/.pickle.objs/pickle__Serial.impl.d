lib/pickle/serial.ml: Buf Digestkit List Printf Statics Support
