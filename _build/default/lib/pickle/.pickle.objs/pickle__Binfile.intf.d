lib/pickle/binfile.mli: Digestkit Link Statics Support
