lib/pickle/buf.mli: Digestkit
