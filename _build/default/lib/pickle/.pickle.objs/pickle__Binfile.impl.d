lib/pickle/binfile.ml: Buf Digestkit Int64 Lambda Link List Printf Serial Statics String Support
