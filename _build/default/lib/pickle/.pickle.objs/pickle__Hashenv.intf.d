lib/pickle/hashenv.mli: Digestkit Statics Support
