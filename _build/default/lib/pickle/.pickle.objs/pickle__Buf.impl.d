lib/pickle/buf.ml: Buffer Char Digestkit List Printf String
