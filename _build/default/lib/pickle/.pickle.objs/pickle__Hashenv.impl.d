lib/pickle/hashenv.ml: Buf Buffer Digestkit Hashtbl List Printf Serial Statics String Support
