(** Canonical serialization of static environments.

    One traversal, two clients (section 4 and 5 of the paper share it):

    - the {e hasher} serializes with local stamps alpha-converted to
      their first-encounter index and without runtime addresses, and
      digests the bytes into the unit's intrinsic pid;
    - the {e pickler} serializes an exported environment (whose own
      stamps are [External(self, idx)]) together with the definitions
      of the stamps it owns; references to other units' stamps become
      stubs (owner pid + index) resolved against the context at
      rehydration.

    Unification variables must not remain in a serialized environment;
    encountering one raises {!Support.Diag.Error} (an unresolved
    top-level type). *)

(** How a stamp is written. *)
type token =
  | TokGlobal of int
  | TokOwn of int  (** this unit's own object, by canonical index *)
  | TokExtern of Digestkit.Pid.t * int  (** stub into another unit *)

(** [numbering ctx env] — canonical first-encounter indices for every
    [Local] stamp reachable from [env].  The returned list is the own
    stamps in index order. *)
val numbering :
  Statics.Context.t -> Statics.Types.env -> (Statics.Stamp.t -> token) * Statics.Stamp.t list

(** Token mapping for an already-exported environment: own stamps are
    the [External]s owned by [self]. *)
val exported_token : self:Digestkit.Pid.t -> Statics.Stamp.t -> token

(** [write_env w ctx ~token ~with_addrs env] *)
val write_env :
  Buf.writer ->
  Statics.Context.t ->
  token:(Statics.Stamp.t -> token) ->
  with_addrs:bool ->
  Statics.Types.env ->
  unit

(** [write_tycon_info w ctx ~token info] *)
val write_tycon_info :
  Buf.writer ->
  Statics.Context.t ->
  token:(Statics.Stamp.t -> token) ->
  Statics.Types.tycon_info ->
  unit

(** [read_env r ~resolve] — rebuild an environment; [resolve] maps
    tokens back to stamps (typically [TokOwn i ↦ External(self, i)]). *)
val read_env : Buf.reader -> resolve:(token -> Statics.Stamp.t) -> Statics.Types.env

val read_tycon_info :
  Buf.reader -> resolve:(token -> Statics.Stamp.t) -> Statics.Types.tycon_info
