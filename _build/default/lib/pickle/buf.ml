type writer = Buffer.t

let writer () = Buffer.create 1024
let byte w b = Buffer.add_char w (Char.chr (b land 0xFF))

(* unsigned varint *)
let rec uvarint w n =
  if n < 0x80 then byte w n
  else begin
    byte w (0x80 lor (n land 0x7F));
    uvarint w (n lsr 7)
  end

(* zigzag-encode so small negative ints stay small *)
let int w n = uvarint w ((n lsl 1) lxor (n asr 62))

let string w s =
  uvarint w (String.length s);
  Buffer.add_string w s

let bool w b = byte w (if b then 1 else 0)

let option w f = function
  | None -> byte w 0
  | Some v ->
    byte w 1;
    f v

let list w f items =
  uvarint w (List.length items);
  List.iter f items

let pid w p = Buffer.add_string w (Digestkit.Pid.to_bytes p)
let contents = Buffer.contents

let hash_contents w ctx =
  Digestkit.Md5.feed_string ctx (Buffer.contents w)

type reader = { data : string; mutable pos : int }

exception Corrupt of string

let reader data = { data; pos = 0 }

let read_byte r =
  if r.pos >= String.length r.data then raise (Corrupt "unexpected end of data");
  let b = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  b

let read_uvarint r =
  let rec go shift acc =
    let b = read_byte r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let read_int r =
  let z = read_uvarint r in
  (z lsr 1) lxor (-(z land 1))

let read_string r =
  let n = read_uvarint r in
  if r.pos + n > String.length r.data then raise (Corrupt "truncated string");
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_bool r =
  match read_byte r with
  | 0 -> false
  | 1 -> true
  | b -> raise (Corrupt (Printf.sprintf "bad bool byte %d" b))

let read_option r f =
  match read_byte r with
  | 0 -> None
  | 1 -> Some (f ())
  | b -> raise (Corrupt (Printf.sprintf "bad option byte %d" b))

let read_list r f =
  let n = read_uvarint r in
  List.init n (fun _ -> f ())

let read_pid r =
  if r.pos + 16 > String.length r.data then raise (Corrupt "truncated pid");
  let s = String.sub r.data r.pos 16 in
  r.pos <- r.pos + 16;
  Digestkit.Pid.of_bytes s

let at_end r = r.pos = String.length r.data
