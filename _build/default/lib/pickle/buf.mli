(** Byte-level writer/reader for the bin-file format and canonical
    hashing.  Integers use LEB128-style varints (with zigzag for signed
    values), so the format is machine-independent — the paper's
    requirement that environments be portable across architectures. *)

type writer

val writer : unit -> writer
val byte : writer -> int -> unit

(** signed, zigzag varint *)
val int : writer -> int -> unit

val string : writer -> string -> unit
val bool : writer -> bool -> unit
val option : writer -> ('a -> unit) -> 'a option -> unit
val list : writer -> ('a -> unit) -> 'a list -> unit
val pid : writer -> Digestkit.Pid.t -> unit
val contents : writer -> string

(** Feed the current contents into an MD5 context without copying. *)
val hash_contents : writer -> Digestkit.Md5.ctx -> unit

type reader

exception Corrupt of string

val reader : string -> reader
val read_byte : reader -> int
val read_int : reader -> int
val read_string : reader -> string
val read_bool : reader -> bool
val read_option : reader -> (unit -> 'a) -> 'a option
val read_list : reader -> (unit -> 'a) -> 'a list
val read_pid : reader -> Digestkit.Pid.t
val at_end : reader -> bool
