(** Intrinsic pids by hashing static environments (section 5).

    The hash serializes environments canonically with provisional
    (local) stamps alpha-converted to their first-encounter index — so
    a digest depends only on the *interface*: exported names, types,
    signatures and functor bodies — and not on when, where, or in what
    order internal stamps were generated, nor on comments, whitespace,
    or implementation terms.

    Identities are assigned {e per exported binding}, in canonical
    binding order:

    - each top-level binding's environment is hashed in isolation,
      with stamps owned by earlier bindings rendered by their owner's
      intrinsic pid (so a binding's pid changes exactly when something
      it actually depends on changes);
    - every provisional stamp is owned by the first binding that
      reaches it and becomes [External(owner_pid, index)];
    - the binding's dynamic pid derives from its intrinsic pid;
    - the unit's static pid digests the per-binding pids.

    This per-binding scheme is what makes the {e selective} ("smart")
    recompilation policy sound: an interface change to one module of a
    unit leaves the identities of its sibling modules — stamps and
    dynamic pids alike — untouched, so dependents of the siblings keep
    valid bins. *)

(** [hash_env ctx env] — the intrinsic pid of an environment taken as a
    whole (alpha-converted provisional stamps, no addresses). *)
val hash_env : Statics.Context.t -> Statics.Types.env -> Digestkit.Pid.t

(** The result of exporting a unit's environment. *)
type export = {
  ex_env : Statics.Types.env;
      (** environment with own stamps rebound to their per-binding
          intrinsic identities and top-level addresses rooted at the
          dynamic pids *)
  ex_static_pid : Digestkit.Pid.t;  (** digest of the per-binding pids *)
  ex_exports : (Support.Symbol.t * Digestkit.Pid.t) list;
      (** dynamic pid of each top-level structure/functor *)
  ex_name_statics : (Support.Symbol.t * Digestkit.Pid.t) list;
      (** every top-level binding's intrinsic pid (tagged name order);
          the selective-recompilation currency *)
}

(** [export ctx env] — assign intrinsic identities as described above,
    registering renamed type constructors in the context.  This is the
    paper's "replace the provisional pids by the real pids" step at the
    end of a compilation. *)
val export : Statics.Context.t -> Statics.Types.env -> export

(** [verify ctx ~name_statics env] — recompute every binding's
    intrinsic pid from an exported (rehydrated) environment and check
    it against [name_statics]; used by tests and bin-file auditing.
    Returns the recomputed unit static pid on success. *)
val verify :
  Statics.Context.t ->
  name_statics:(Support.Symbol.t * Digestkit.Pid.t) list ->
  Statics.Types.env ->
  Digestkit.Pid.t option

(** [unit_pid name_statics] — the unit static pid determined by its
    per-binding pids. *)
val unit_pid : (Support.Symbol.t * Digestkit.Pid.t) list -> Digestkit.Pid.t
