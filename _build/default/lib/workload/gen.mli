(** Synthetic MiniSML project generator.

    The paper's evaluation workload is the SML/NJ compiler itself
    (65,000 lines, ~200 units) — not available to us, so the benches
    generate projects of controlled shape and size instead
    (substitution documented in DESIGN.md).  Generated units have a
    stable interface across {e implementation} edits and a changed
    interface under {e interface} edits, which is exactly the property
    the cutoff experiments need. *)

(** Dependency shapes. *)
type topology =
  | Chain of int  (** u0 <- u1 <- … <- u(n-1) *)
  | Fanout of int  (** one base, n dependents *)
  | Diamond of int  (** [n] layers of 2 units, each depending on both above *)
  | Binary_tree of int  (** depth-[n] tree; parents depend on children *)
  | Random_dag of { units : int; max_deps : int; seed : int }
      (** each unit depends on up to [max_deps] earlier units *)

type profile = {
  funs_per_unit : int;  (** exported functions per unit *)
  helpers_per_unit : int;  (** hidden helper functions (bulk) *)
  rich : bool;
      (** also generate a datatype, a signature and a functor per unit,
          exercising the full module language (closer to the paper's
          compiler-shaped workload) *)
}

val default_profile : profile

(** [default_profile] with [rich = true]. *)
val rich_profile : profile

(** A profile whose units have roughly [lines] lines each. *)
val sized_profile : lines:int -> profile

(** Kinds of edit applied to one unit. *)
type edit =
  | Touch  (** comment-only change *)
  | Impl_change  (** new constants/bodies, same interface *)
  | Iface_change  (** adds an exported value: new interface *)

(** A generated project installed on a file system. *)
type t

(** [create fs topology profile] — generate all sources and write them. *)
val create : Vfs.fs -> topology -> profile -> t

(** Source file paths, in generation order (the IRM reorders anyway). *)
val sources : t -> string list

(** Number of units. *)
val size : t -> int

(** Total source lines, for reporting scale. *)
val total_lines : t -> int

(** [edit t file kind] — rewrite one unit according to [kind]. *)
val edit : t -> string -> edit -> unit

(** A file in the middle of the dependency order (interesting victim
    for edits: it has both dependencies and dependents). *)
val middle_file : t -> string

(** The file with no dependencies (first in the order). *)
val base_file : t -> string

val edit_name : edit -> string
