type topology =
  | Chain of int
  | Fanout of int
  | Diamond of int
  | Binary_tree of int
  | Random_dag of { units : int; max_deps : int; seed : int }

type profile = { funs_per_unit : int; helpers_per_unit : int; rich : bool }

let default_profile = { funs_per_unit = 3; helpers_per_unit = 3; rich = false }
let rich_profile = { default_profile with rich = true }

let sized_profile ~lines =
  (* each helper/function is one line; the fixed skeleton is ~8 lines *)
  let bulk = max 2 ((lines - 8) / 2) in
  { funs_per_unit = bulk; helpers_per_unit = bulk; rich = true }

type edit = Touch | Impl_change | Iface_change

let edit_name = function
  | Touch -> "touch"
  | Impl_change -> "impl-change"
  | Iface_change -> "iface-change"

type spec = {
  sp_index : int;
  sp_name : string;  (** structure name, e.g. U017 *)
  sp_file : string;
  sp_deps : string list;  (** structure names *)
}

type t = {
  fs : Vfs.fs;
  profile : profile;
  specs : spec list;
  (* per-unit edit state *)
  variants : (string, int) Hashtbl.t;  (** bumped by Impl_change *)
  extras : (string, int) Hashtbl.t;  (** bumped by Iface_change *)
  touches : (string, int) Hashtbl.t;  (** bumped by Touch *)
}

(* Deterministic LCG so Random_dag is reproducible without the global
   random state. *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound

let unit_name i = Printf.sprintf "U%03d" i
let unit_file i = Printf.sprintf "u%03d.sml" i

let edges = function
  | Chain n -> List.init n (fun i -> if i = 0 then [] else [ i - 1 ])
  | Fanout n -> List.init (n + 1) (fun i -> if i = 0 then [] else [ 0 ])
  | Diamond layers ->
    (* unit 0; then pairs (2k+1, 2k+2) each depending on the previous
       layer's pair (or unit 0); finally a join unit *)
    let n = (2 * layers) + 2 in
    List.init n (fun i ->
        if i = 0 then []
        else if i = n - 1 then
          (* join depends on the last pair *)
          [ n - 3; n - 2 ]
        else
          let layer = (i - 1) / 2 in
          if layer = 0 then [ 0 ] else [ (2 * (layer - 1)) + 1; (2 * (layer - 1)) + 2 ])
  | Binary_tree depth ->
    let n = (1 lsl depth) - 1 in
    (* node i depends on its children 2i+1, 2i+2; leaves on nothing;
       reverse the indices so dependencies come first *)
    List.init n (fun i ->
        let orig = n - 1 - i in
        let kids = [ (2 * orig) + 1; (2 * orig) + 2 ] in
        List.filter_map
          (fun k -> if k < n then Some (n - 1 - k) else None)
          kids)
  | Random_dag { units; max_deps; seed } ->
    let rand = lcg seed in
    List.init units (fun i ->
        if i = 0 then []
        else
          let want = 1 + rand (max max_deps 1) in
          let want = min want i in
          let rec pick acc remaining =
            if remaining = 0 then acc
            else
              let d = rand i in
              if List.mem d acc then pick acc remaining
              else pick (d :: acc) (remaining - 1)
          in
          List.sort compare (pick [] want))

let source_of t spec =
  let variant = Option.value ~default:0 (Hashtbl.find_opt t.variants spec.sp_file) in
  let extras = Option.value ~default:0 (Hashtbl.find_opt t.extras spec.sp_file) in
  let touches = Option.value ~default:0 (Hashtbl.find_opt t.touches spec.sp_file) in
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  for i = 1 to touches do
    addf "(* touched %d *)\n" i
  done;
  addf "structure %s = struct\n" spec.sp_name;
  (* base value: sum over dependencies plus a variant-dependent constant *)
  let dep_sum =
    match spec.sp_deps with
    | [] -> string_of_int (1 + variant)
    | deps ->
      String.concat " + " (List.map (fun d -> d ^ ".seed") deps)
      ^ Printf.sprintf " + %d" (1 + variant)
  in
  addf "  val seed = %s\n" dep_sum;
  (* hidden helpers: consume stamps and compile time without touching
     the interface *)
  addf "  local\n";
  for h = 0 to t.profile.helpers_per_unit - 1 do
    addf "    fun help%d n = if n < 1 then %d else n * %d + help%d (n - 1)\n" h
      (variant + h) (h + 2) h
  done;
  addf "  in\n";
  for f = 0 to t.profile.funs_per_unit - 1 do
    let helper = f mod max t.profile.helpers_per_unit 1 in
    addf "    fun work%d n = help%d (n mod 7) + seed * %d\n" f helper (f + 1)
  done;
  addf "  end\n";
  (* interface edits add exported values *)
  for e = 1 to extras do
    addf "  val extra%d = %d\n" e e
  done;
  if t.profile.rich then begin
    (* a datatype and a consumer: interface-stable across Impl_change *)
    addf "  datatype shape = Dot | Wide of shape * int\n";
    addf "  fun weigh s = case s of Dot => %d | Wide (inner, n) => n + weigh inner\n"
      (1 + (variant mod 3));
    addf "  val sample = weigh (Wide (Wide (Dot, 2), seed))\n"
  end;
  addf "end\n";
  if t.profile.rich then begin
    (* a signature and a functor over it, applied once *)
    addf "signature %s_PEER = sig val seed : int end\n" spec.sp_name;
    addf "functor %s_Mix (X : %s_PEER) = struct val mixed = X.seed + %s.seed \
          end\n"
      spec.sp_name spec.sp_name spec.sp_name;
    addf "structure %s_Self = %s_Mix(%s)\n" spec.sp_name spec.sp_name
      spec.sp_name
  end;
  Buffer.contents buf

let write_unit t spec = t.fs.Vfs.fs_write spec.sp_file (source_of t spec)

let create fs topology profile =
  let deps = edges topology in
  let specs =
    List.mapi
      (fun i dep_indices ->
        {
          sp_index = i;
          sp_name = unit_name i;
          sp_file = unit_file i;
          sp_deps = List.map unit_name dep_indices;
        })
      deps
  in
  let t =
    {
      fs;
      profile;
      specs;
      variants = Hashtbl.create 16;
      extras = Hashtbl.create 16;
      touches = Hashtbl.create 16;
    }
  in
  List.iter (write_unit t) specs;
  t

let sources t = List.map (fun s -> s.sp_file) t.specs
let size t = List.length t.specs

let total_lines t =
  List.fold_left
    (fun acc spec ->
      match t.fs.Vfs.fs_read spec.sp_file with
      | Some content ->
        acc + List.length (String.split_on_char '\n' content)
      | None -> acc)
    0 t.specs

let find_spec t file =
  match List.find_opt (fun s -> String.equal s.sp_file file) t.specs with
  | Some spec -> spec
  | None -> invalid_arg ("Gen.edit: unknown file " ^ file)

let bump table file =
  Hashtbl.replace table file
    (1 + Option.value ~default:0 (Hashtbl.find_opt table file))

let edit t file kind =
  let spec = find_spec t file in
  (match kind with
  | Touch -> bump t.touches file
  | Impl_change -> bump t.variants file
  | Iface_change -> bump t.extras file);
  write_unit t spec

let middle_file t =
  let n = List.length t.specs in
  (List.nth t.specs (n / 2)).sp_file

let base_file t = (List.hd t.specs).sp_file
