lib/workload/gen.mli: Vfs
