lib/workload/gen.ml: Buffer Hashtbl List Option Printf String Vfs
