lib/dynamics/eval.mli: Digestkit Lambda Support Value
