lib/dynamics/eval.ml: Array Digestkit Lambda List Statics String Support Value
