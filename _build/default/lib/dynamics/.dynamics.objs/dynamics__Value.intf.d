lib/dynamics/value.mli: Format Lambda Statics Support
