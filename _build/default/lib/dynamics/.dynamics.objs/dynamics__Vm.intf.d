lib/dynamics/vm.mli: Digestkit Lambda Statics Support Value
