lib/dynamics/vm.ml: Array Digestkit Eval Lambda List Printf Queue Statics String Support Value
