lib/dynamics/value.ml: Array Format Lambda List Statics String Support
