module Symbol = Support.Symbol

type exnid = { uid : int; exn_name : Symbol.t; has_arg : bool }

type t =
  | Vint of int
  | Vstring of string
  | Vtuple of t array
  | Vrecord of t Symbol.Map.t
  | Vcon0 of int
  | Vcon of int * t
  | Vclosure of closure
  | Vprim of Statics.Prim.t
  | Vexnid of exnid
  | Vexn of exnid * t option
  | Vref of t ref

and closure = {
  cl_param : Symbol.t;
  cl_body : Lambda.t;
  mutable cl_env : t Symbol.Map.t;
}

let unit_value = Vtuple [||]
let bool_value b = Vcon0 (if b then 1 else 0)

let of_list values =
  List.fold_right (fun v acc -> Vcon (1, Vtuple [| v; acc |])) values (Vcon0 0)

let rec equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vstring x, Vstring y -> String.equal x y
  | Vtuple xs, Vtuple ys ->
    Array.length xs = Array.length ys
    && (let ok = ref true in
        Array.iteri (fun i x -> if not (equal x ys.(i)) then ok := false) xs;
        !ok)
  | Vrecord xs, Vrecord ys -> Symbol.Map.equal equal xs ys
  | Vcon0 x, Vcon0 y -> x = y
  | Vcon (tx, vx), Vcon (ty, vy) -> tx = ty && equal vx vy
  | Vexnid x, Vexnid y -> x.uid = y.uid
  | Vexn (x, ax), Vexn (y, ay) -> (
    x.uid = y.uid
    &&
    match (ax, ay) with
    | None, None -> true
    | Some va, Some vb -> equal va vb
    | None, Some _ | Some _, None -> false)
  | Vref x, Vref y -> x == y
  | (Vclosure _ | Vprim _), _ | _, (Vclosure _ | Vprim _) ->
    invalid_arg "equality on functions"
  | _ -> false

let rec pp ppf v =
  match v with
  | Vint n -> if n < 0 then Format.fprintf ppf "~%d" (-n) else Format.pp_print_int ppf n
  | Vstring s -> Format.fprintf ppf "%S" s
  | Vtuple [||] -> Format.pp_print_string ppf "()"
  | Vtuple parts ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp)
      (Array.to_list parts)
  | Vrecord fields ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (name, v) -> Format.fprintf ppf "%s=%a" (Symbol.name name) pp v))
      (Symbol.Map.bindings fields)
  | Vcon0 tag -> Format.fprintf ppf "con%d" tag
  | Vcon (tag, arg) -> Format.fprintf ppf "con%d(%a)" tag pp arg
  | Vclosure _ -> Format.pp_print_string ppf "fn"
  | Vprim p -> Format.fprintf ppf "fn<%s>" (Statics.Prim.name p)
  | Vexnid id -> Format.fprintf ppf "exn<%s>" (Symbol.name id.exn_name)
  | Vexn (id, None) -> Format.fprintf ppf "%s" (Symbol.name id.exn_name)
  | Vexn (id, Some arg) ->
    Format.fprintf ppf "%s(%a)" (Symbol.name id.exn_name) pp arg
  | Vref cell -> Format.fprintf ppf "ref(%a)" pp !cell

let to_string v = Format.asprintf "%a" pp v
