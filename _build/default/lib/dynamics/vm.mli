(** A bytecode virtual machine for the lambda IR.

    The paper's units carry native machine code; our interpreter
    ({!Eval}) stands in for it.  This module strengthens that
    substitution: lambda terms compile to a flat instruction vector
    executed by a stack machine (CAM-style: de Bruijn environments,
    explicit call frames, a handler stack for exceptions), which is the
    same "closed code applied to imported values" shape with one more
    compilation step.  The test suite runs the VM differentially
    against the interpreter; the benches compare their speed (E12).

    The VM has its own value representation (closures are code
    pointers, not terms); {!observe} renders results for comparison
    with {!Eval}. *)

module Symbol := Support.Symbol

type value =
  | Int of int
  | Str of string
  | Tuple of value array
  | Record of value Symbol.Map.t
  | Con0 of int
  | Con of int * value
  | Closure of closure
  | Prim of Statics.Prim.t
  | Exncon of Value.exnid
  | Exnpkt of Value.exnid * value option
  | Ref of value ref

and closure = { code_addr : int; mutable captured : value list }

(** A compiled program: instruction vector + entry point. *)
type program

(** Number of instructions, for the benches. *)
val program_length : program -> int

(** [compile term] — bytecode for a closed lambda term.
    Raises {!Support.Diag.Error} (phase [Translate]) on unbound
    variables, which would indicate a translation bug. *)
val compile : Lambda.t -> program

exception Vm_raise of value
(** An uncaught MiniSML exception, as a VM packet value. *)

(** [run ?output ~imports program] — execute.  [imports] satisfies
    [Limport] instructions; [output] receives [print]ed strings.
    Raises {!Vm_raise}, {!Dynamics.Eval.Sml_exit}, or
    {!Support.Diag.Error} (phase [Execute]) on representation errors. *)
val run :
  ?output:(string -> unit) ->
  imports:value Digestkit.Pid.Map.t ->
  program ->
  value

(** [observe v] — a printable, closure-free rendering for differential
    tests (functions print as ["fn"]). *)
val observe : value -> string

(** [observe_eval v] — the same rendering for interpreter values, so
    both backends can be compared. *)
val observe_eval : Value.t -> string
