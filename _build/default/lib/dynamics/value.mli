(** Runtime values of the MiniSML evaluator. *)

module Symbol := Support.Symbol

(** A generative exception identity.  Allocated by executing an
    [exception] declaration; two executions yield two identities. *)
type exnid = { uid : int; exn_name : Symbol.t; has_arg : bool }

type t =
  | Vint of int
  | Vstring of string
  | Vtuple of t array  (** unit is the empty tuple *)
  | Vrecord of t Symbol.Map.t  (** structure value *)
  | Vcon0 of int  (** nullary datatype constructor *)
  | Vcon of int * t  (** unary datatype constructor *)
  | Vclosure of closure
  | Vprim of Statics.Prim.t  (** primitive as a first-class value *)
  | Vexnid of exnid  (** exception constructor *)
  | Vexn of exnid * t option  (** exception packet *)
  | Vref of t ref

and closure = {
  cl_param : Symbol.t;
  cl_body : Lambda.t;
  mutable cl_env : t Symbol.Map.t;
      (** mutable to tie recursive knots for [Lfix] *)
}

val unit_value : t
val bool_value : bool -> t
val of_list : t list -> t  (** MiniSML list value *)

(** Structural equality, as the [=] primitive defines it: ints, strings,
    tuples, constructors, records, and refs (by identity), exception
    identities by uid.  Raises [Invalid_argument] on closures and
    primitives, mirroring SML's type-level exclusion of function
    equality. *)
val equal : t -> t -> bool

(** Render a value for the REPL ([print]-style, not re-parseable for
    closures). *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
