(** The lambda-IR evaluator: a straightforward environment-passing
    interpreter playing the role of the paper's machine-code execution.

    Evaluation is parameterised by a {!runtime}: the import map
    (dynamic pid → value, provided by the linker), the output channel
    for [print], and the generative exception-identity allocator. *)

module Symbol := Support.Symbol

(** A MiniSML exception packet crossing into OCaml. *)
exception Sml_raise of Value.t

(** [exit n] from the program. *)
exception Sml_exit of int

type runtime

(** [runtime ~imports ~output ()].  [output] receives [print]ed strings
    (defaults to stdout). *)
val runtime :
  ?output:(string -> unit) -> imports:Value.t Digestkit.Pid.Map.t -> unit -> runtime

(** Well-known identities of the predefined exceptions ([Match], [Bind],
    [Div], [Fail], [Subscript]); shared by every runtime so packets
    cross unit boundaries coherently. *)
val basis_exnid : Symbol.t -> Value.exnid

(** [eval rt env term].  Raises {!Sml_raise} for uncaught MiniSML
    exceptions and {!Support.Diag.Error} (phase [Execute]) for genuine
    runtime-representation errors, which indicate a compiler bug or a
    stale bin file. *)
val eval : runtime -> Value.t Symbol.Map.t -> Lambda.t -> Value.t

(** [run rt term] — evaluate a closed term in the empty environment. *)
val run : runtime -> Lambda.t -> Value.t
