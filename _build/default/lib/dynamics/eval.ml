module Symbol = Support.Symbol
module Diag = Support.Diag
module Pid = Digestkit.Pid
module P = Statics.Prim
open Value

exception Sml_raise of Value.t
exception Sml_exit of int

type runtime = {
  imports : Value.t Pid.Map.t;
  output : string -> unit;
}

let exn_uid_counter = ref 0

let fresh_exnid exn_name has_arg =
  incr exn_uid_counter;
  { uid = !exn_uid_counter; exn_name; has_arg }

let basis_exnids : (string * exnid) list =
  List.map
    (fun (name, _stamp, arg) ->
      (name, fresh_exnid (Symbol.intern name) (arg <> None)))
    Statics.Basis.exn_stamps

let basis_exnid name =
  match List.assoc_opt (Symbol.name name) basis_exnids with
  | Some id -> id
  | None ->
    Diag.error Diag.Execute Support.Loc.dummy "unknown predefined exception %a"
      Symbol.pp name

let runtime ?(output = print_string) ~imports () = { imports; output }

let exec_error fmt = Diag.error Diag.Execute Support.Loc.dummy fmt

let raise_basis name arg =
  raise (Sml_raise (Vexn (basis_exnid (Symbol.intern name), arg)))

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)
(* ------------------------------------------------------------------ *)

let int_pair = function
  | Vtuple [| Vint a; Vint b |] -> (a, b)
  | v -> exec_error "primitive expected an int pair, got %s" (Value.to_string v)

let apply_prim rt prim arg =
  match prim with
  | P.Padd ->
    let a, b = int_pair arg in
    Vint (a + b)
  | P.Psub ->
    let a, b = int_pair arg in
    Vint (a - b)
  | P.Pmul ->
    let a, b = int_pair arg in
    Vint (a * b)
  | P.Pdiv ->
    let a, b = int_pair arg in
    if b = 0 then raise_basis "Div" None else Vint (a / b)
  | P.Pmod ->
    let a, b = int_pair arg in
    if b = 0 then raise_basis "Div" None else Vint (a mod b)
  | P.Pneg -> (
    match arg with
    | Vint n -> Vint (-n)
    | v -> exec_error "~ expected an int, got %s" (Value.to_string v))
  | P.Plt ->
    let a, b = int_pair arg in
    bool_value (a < b)
  | P.Ple ->
    let a, b = int_pair arg in
    bool_value (a <= b)
  | P.Pgt ->
    let a, b = int_pair arg in
    bool_value (a > b)
  | P.Pge ->
    let a, b = int_pair arg in
    bool_value (a >= b)
  | P.Peq -> (
    match arg with
    | Vtuple [| a; b |] -> (
      match Value.equal a b with
      | eq -> bool_value eq
      | exception Invalid_argument _ -> exec_error "equality on functions")
    | v -> exec_error "= expected a pair, got %s" (Value.to_string v))
  | P.Pneq -> (
    match arg with
    | Vtuple [| a; b |] -> (
      match Value.equal a b with
      | eq -> bool_value (not eq)
      | exception Invalid_argument _ -> exec_error "equality on functions")
    | v -> exec_error "<> expected a pair, got %s" (Value.to_string v))
  | P.Pconcat -> (
    match arg with
    | Vtuple [| Vstring a; Vstring b |] -> Vstring (a ^ b)
    | v -> exec_error "^ expected strings, got %s" (Value.to_string v))
  | P.Psize -> (
    match arg with
    | Vstring s -> Vint (String.length s)
    | v -> exec_error "size expected a string, got %s" (Value.to_string v))
  | P.Pint_to_string -> (
    match arg with
    | Vint n ->
      Vstring (if n < 0 then "~" ^ string_of_int (-n) else string_of_int n)
    | v -> exec_error "intToString expected an int, got %s" (Value.to_string v))
  | P.Pstring_to_int -> (
    match arg with
    | Vstring s -> (
      let s' =
        if String.length s > 0 && s.[0] = '~' then
          "-" ^ String.sub s 1 (String.length s - 1)
        else s
      in
      match int_of_string_opt s' with
      | Some n -> Vint n
      | None -> raise_basis "Fail" (Some (Vstring ("stringToInt: " ^ s))))
    | v -> exec_error "stringToInt expected a string, got %s" (Value.to_string v))
  | P.Pnot -> (
    match arg with
    | Vcon0 0 -> bool_value true
    | Vcon0 1 -> bool_value false
    | v -> exec_error "not expected a bool, got %s" (Value.to_string v))
  | P.Pref -> Vref (ref arg)
  | P.Pderef -> (
    match arg with
    | Vref cell -> !cell
    | v -> exec_error "! expected a ref, got %s" (Value.to_string v))
  | P.Passign -> (
    match arg with
    | Vtuple [| Vref cell; v |] ->
      cell := v;
      unit_value
    | v -> exec_error ":= expected (ref, value), got %s" (Value.to_string v))
  | P.Pprint -> (
    match arg with
    | Vstring s ->
      rt.output s;
      unit_value
    | v -> exec_error "print expected a string, got %s" (Value.to_string v))
  | P.Pexit -> (
    match arg with
    | Vint n -> raise (Sml_exit n)
    | v -> exec_error "exit expected an int, got %s" (Value.to_string v))

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let rec eval rt env (term : Lambda.t) =
  match term with
  | Lambda.Lvar v -> (
    match Symbol.Map.find_opt v env with
    | Some value -> value
    | None -> exec_error "unbound runtime variable %a" Symbol.pp v)
  | Lambda.Lint n -> Vint n
  | Lambda.Lstring s -> Vstring s
  | Lambda.Limport pid -> (
    match Pid.Map.find_opt pid rt.imports with
    | Some value -> value
    | None ->
      Diag.error Diag.Link Support.Loc.dummy "unsatisfied import %s"
        (Pid.to_hex pid))
  | Lambda.Lprim p -> Vprim p
  | Lambda.Lbasisexn name -> Vexnid (basis_exnid name)
  | Lambda.Lfn (param, body) ->
    Vclosure { cl_param = param; cl_body = body; cl_env = env }
  | Lambda.Lapp (f, arg) ->
    let fv = eval rt env f in
    let argv = eval rt env arg in
    apply rt fv argv
  | Lambda.Llet (v, e, body) ->
    let value = eval rt env e in
    eval rt (Symbol.Map.add v value env) body
  | Lambda.Lfix (binds, body) ->
    let closures =
      List.map
        (fun (f, param, fbody) ->
          (f, { cl_param = param; cl_body = fbody; cl_env = env }))
        binds
    in
    let env' =
      List.fold_left
        (fun env (f, cl) -> Symbol.Map.add f (Vclosure cl) env)
        env closures
    in
    List.iter (fun (_, cl) -> cl.cl_env <- env') closures;
    eval rt env' body
  | Lambda.Ltuple parts ->
    Vtuple (Array.of_list (List.map (eval rt env) parts))
  | Lambda.Lselect (i, e) -> (
    match eval rt env e with
    | Vtuple parts when i < Array.length parts -> parts.(i)
    | v -> exec_error "bad tuple projection #%d of %s" i (Value.to_string v))
  | Lambda.Lrecord fields ->
    Vrecord
      (List.fold_left
         (fun acc (name, e) -> Symbol.Map.add name (eval rt env e) acc)
         Symbol.Map.empty fields)
  | Lambda.Lfield (name, e) -> (
    match eval rt env e with
    | Vrecord fields -> (
      match Symbol.Map.find_opt name fields with
      | Some v -> v
      | None -> exec_error "structure has no component %a" Symbol.pp name)
    | v -> exec_error "field access on non-structure %s" (Value.to_string v))
  | Lambda.Lcon0 tag -> Vcon0 tag
  | Lambda.Lcon (tag, e) -> Vcon (tag, eval rt env e)
  | Lambda.Lcontag e -> (
    match eval rt env e with
    | Vcon0 tag | Vcon (tag, _) -> Vint tag
    | v -> exec_error "tag of non-constructor %s" (Value.to_string v))
  | Lambda.Lconarg e -> (
    match eval rt env e with
    | Vcon (_, arg) -> arg
    | v -> exec_error "argument of non-unary-constructor %s" (Value.to_string v))
  | Lambda.Lnewexn (name, has_arg) -> Vexnid (fresh_exnid name has_arg)
  | Lambda.Lmkexn0 e -> (
    match eval rt env e with
    | Vexnid id -> Vexn (id, None)
    | v -> exec_error "mkexn0 of non-exception %s" (Value.to_string v))
  | Lambda.Lexnid e -> (
    match eval rt env e with
    | Vexnid id | Vexn (id, _) -> Vint id.uid
    | v -> exec_error "exnid of non-exception %s" (Value.to_string v))
  | Lambda.Lexnarg e -> (
    match eval rt env e with
    | Vexn (_, Some arg) -> arg
    | Vexn (_, None) -> exec_error "exception packet carries no argument"
    | v -> exec_error "exnarg of non-packet %s" (Value.to_string v))
  | Lambda.Lif (c, t, e) -> (
    match eval rt env c with
    | Vcon0 1 -> eval rt env t
    | Vcon0 0 -> eval rt env e
    | v -> exec_error "if on non-bool %s" (Value.to_string v))
  | Lambda.Lraise e -> (
    match eval rt env e with
    | Vexn _ as packet -> raise (Sml_raise packet)
    | v -> exec_error "raise of non-packet %s" (Value.to_string v))
  | Lambda.Lhandle (body, v, handler) -> (
    match eval rt env body with
    | value -> value
    | exception Sml_raise packet ->
      eval rt (Symbol.Map.add v packet env) handler)

and apply rt fv argv =
  match fv with
  | Vclosure cl -> eval rt (Symbol.Map.add cl.cl_param argv cl.cl_env) cl.cl_body
  | Vprim p -> apply_prim rt p argv
  | Vexnid id ->
    if id.has_arg then Vexn (id, Some argv)
    else exec_error "application of a nullary exception constructor"
  | v -> exec_error "application of non-function %s" (Value.to_string v)

let run rt term = eval rt Symbol.Map.empty term
