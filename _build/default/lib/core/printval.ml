module Types = Statics.Types
module Value = Dynamics.Value

let rec collect_list acc value =
  match value with
  | Value.Vcon0 0 -> Some (List.rev acc)
  | Value.Vcon (1, Value.Vtuple [| head; tail |]) ->
    collect_list (head :: acc) tail
  | _ -> None

(* depth-limited so cyclic refs cannot loop *)
let rec go ctx depth ty value =
  if depth > 12 then "..."
  else
    let ty = Statics.Unify.head_normalize ctx ty in
    match (ty, value) with
    | _, Value.Vint n ->
      if n < 0 then "~" ^ string_of_int (-n) else string_of_int n
    | _, Value.Vstring s -> Printf.sprintf "%S" s
    | _, (Value.Vclosure _ | Value.Vprim _) -> "fn"
    | _, Value.Vexnid id -> "exn " ^ Support.Symbol.name id.Value.exn_name
    | _, Value.Vexn (id, None) -> Support.Symbol.name id.Value.exn_name
    | Types.Tcon (stamp, _), Value.Vexn (id, Some arg)
      when Statics.Stamp.equal stamp Statics.Basis.exn_stamp ->
      Printf.sprintf "%s %s" (Support.Symbol.name id.Value.exn_name)
        (go ctx (depth + 1) (Types.Tvar (ref (Types.Unbound { id = 0; level = 0 }))) arg)
    | _, Value.Vexn (id, Some _) -> Support.Symbol.name id.Value.exn_name ^ " _"
    | Types.Ttuple [], Value.Vtuple [||] -> "()"
    | Types.Ttuple parts, Value.Vtuple values
      when List.length parts = Array.length values ->
      "("
      ^ String.concat ", "
          (List.mapi (fun i t -> go ctx (depth + 1) t values.(i)) parts)
      ^ ")"
    | Types.Tcon (stamp, [ elem ]), _
      when Statics.Stamp.equal stamp Statics.Basis.list_stamp -> (
      match collect_list [] value with
      | Some items ->
        "[" ^ String.concat ", " (List.map (go ctx (depth + 1) elem) items) ^ "]"
      | None -> dump value)
    | Types.Tcon (stamp, _), Value.Vcon0 tag
      when Statics.Stamp.equal stamp Statics.Basis.bool_stamp ->
      if tag = 1 then "true" else "false"
    | Types.Tcon (stamp, [ elem ]), Value.Vref cell
      when Statics.Stamp.equal stamp Statics.Basis.ref_stamp ->
      "ref (" ^ go ctx (depth + 1) elem !cell ^ ")"
    | Types.Tcon (stamp, args), (Value.Vcon0 tag | Value.Vcon (tag, _)) -> (
      (* a user datatype: look its constructors up in the context *)
      match Statics.Context.find ctx stamp with
      | Some { Types.tyc_defn = Types.Data cds; _ } -> (
        match List.find_opt (fun cd -> cd.Types.cd_tag = tag) cds with
        | Some cd -> (
          let name = Support.Symbol.name cd.Types.cd_name in
          match (cd.Types.cd_arg, value) with
          | Some arg_ty, Value.Vcon (_, arg) ->
            let arg_ty =
              Types.instantiate_scheme (Array.of_list args)
                { Types.arity = List.length args; body = arg_ty }
            in
            Printf.sprintf "%s (%s)" name (go ctx (depth + 1) arg_ty arg)
          | _, _ -> name)
        | None -> dump value)
      | _ -> dump value)
    | _, _ -> dump value

and dump value = Value.to_string value

let print ctx ty value = go ctx 0 ty value
