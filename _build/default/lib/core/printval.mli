(** Type-directed printing of runtime values, SML-REPL style.

    The interpreter's values erase types (a bool and a nullary
    constructor look alike), so faithful printing consults the static
    type: [true] rather than [con1], [[1, 2]] rather than cons cells,
    and datatype constructors by their declared names (recovered from
    the constructor descriptions in the compilation context). *)

(** [print ctx ty value] — render [value] at type [ty].  Falls back to
    a representation dump when the type gives no guidance (e.g. after
    unresolved polymorphism). *)
val print : Statics.Context.t -> Statics.Types.ty -> Dynamics.Value.t -> string
