lib/core/interactive.mli: Link Pickle Statics
