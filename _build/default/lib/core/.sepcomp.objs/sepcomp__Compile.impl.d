lib/core/compile.ml: Depend Lang Link List Pickle Simplify Statics String Support Translate
