lib/core/printval.mli: Dynamics Statics
