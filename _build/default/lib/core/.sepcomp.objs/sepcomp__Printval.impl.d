lib/core/printval.ml: Array Dynamics List Printf Statics String Support
