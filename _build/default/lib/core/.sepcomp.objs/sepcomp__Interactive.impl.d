lib/core/interactive.ml: Digestkit Dynamics Format Lambda Lang List Pickle Printf Printval Statics Support Translate
