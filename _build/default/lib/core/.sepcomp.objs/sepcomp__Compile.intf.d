lib/core/compile.mli: Link Pickle Statics Support
