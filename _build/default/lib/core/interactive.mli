(** The interactive read-eval-print loop engine (section 9's "of course
    there is only one proper top-level loop": this is it, built on the
    visible compiler's pieces).

    Unlike separately compiled units, the interactive loop accepts core
    declarations and bare expressions, keeps its dynamic environment
    keyed by local variables (the paper notes interactive bindings need
    no pids), and accumulates static bindings across inputs. *)

type t

(** [create ?output ()].  [output] receives [print]ed strings. *)
val create : ?output:(string -> unit) -> unit -> t

val context : t -> Statics.Context.t

(** The current static environment (basis plus accumulated bindings). *)
val env : t -> Statics.Types.env

(** What one input produced, rendered for display: one line per new
    binding, e.g. ["val x = 7 : int"]. *)
type outcome = {
  bindings : string list;
  warnings : string list;
}

(** [eval t input] — parse (declarations, or a bare expression bound to
    [it]), elaborate, run, and accumulate.  Raises
    {!Support.Diag.Error} on compile-time errors,
    {!Dynamics.Eval.Sml_raise} on uncaught MiniSML exceptions. *)
val eval : t -> string -> outcome

(** [use t unit] — bring a compiled unit's interface into scope (its
    dynamic exports must already be in [dynenv] via {!import_dynenv}).
    The REPL side of the paper's bootstrap loader. *)
val use : t -> Pickle.Binfile.t -> Link.Linker.dynenv -> unit
