(** Type-safe linkage and execution (sections 3 and 5 of the paper).

    The dynamic environment maps dynamic pids to run-time values.
    Because a pid is derived from the hash of the exporting unit's
    static interface, "link-time type checking" reduces to pid lookup:
    a unit compiled against a stale interface asks for a pid nobody
    exports, and the makefile bug is caught here instead of causing a
    wrong execution. *)

type dynenv = Dynamics.Value.t Digestkit.Pid.Map.t

val empty : dynenv

(** [check cu dynenv] verifies every import of [cu] is present.
    Raises {!Support.Diag.Error} (phase [Link]) listing the missing
    pids otherwise. *)
val check : Codeunit.t -> dynenv -> unit

(** [execute ?output cu dynenv] — {!check}, run the unit's code, and
    return [dynenv] extended with the unit's exports.  [output]
    receives [print]ed strings. *)
val execute : ?output:(string -> unit) -> Codeunit.t -> dynenv -> dynenv

(** [export_values cu dynenv] — the record of values the unit exports,
    keyed by source name, extracted after {!execute} (for the REPL and
    tests). *)
val export_values : Codeunit.t -> dynenv -> (Support.Symbol.t * Dynamics.Value.t) list
