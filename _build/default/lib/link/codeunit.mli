(** The dynamic part of a compiled unit — the paper's

    {v codeUnit = { imports: pid list, exports: pid list, code } v}

    [code] evaluates to the record of exported values; its [Limport]
    leaves are exactly [cu_imports].  Exports pair the source-level name
    with the dynamic pid other units import it by. *)

type t = {
  cu_imports : Digestkit.Pid.t list;
  cu_exports : (Support.Symbol.t * Digestkit.Pid.t) list;
  cu_code : Lambda.t;
}

(** [make ~exports code] computes the import list from the code's free
    [Limport]s. *)
val make : exports:(Support.Symbol.t * Digestkit.Pid.t) list -> Lambda.t -> t

(** Invariant check: the declared imports equal the code's free imports
    (order-insensitively).  The pickler verifies this on load. *)
val well_formed : t -> bool

val pp : Format.formatter -> t -> unit
