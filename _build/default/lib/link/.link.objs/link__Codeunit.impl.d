lib/link/codeunit.ml: Digestkit Format Lambda List Support
