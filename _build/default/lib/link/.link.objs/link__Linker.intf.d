lib/link/linker.mli: Codeunit Digestkit Dynamics Support
