lib/link/linker.ml: Codeunit Digestkit Dynamics List Option String Support
