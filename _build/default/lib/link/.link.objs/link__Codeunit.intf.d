lib/link/codeunit.mli: Digestkit Format Lambda Support
