module Pid = Digestkit.Pid
module Symbol = Support.Symbol

type t = {
  cu_imports : Pid.t list;
  cu_exports : (Symbol.t * Pid.t) list;
  cu_code : Lambda.t;
}

let make ~exports code =
  { cu_imports = Lambda.imports code; cu_exports = exports; cu_code = code }

let well_formed cu =
  let declared = List.sort Pid.compare cu.cu_imports in
  let actual = List.sort Pid.compare (Lambda.imports cu.cu_code) in
  List.length declared = List.length actual
  && List.for_all2 Pid.equal declared actual

let pp ppf cu =
  Format.fprintf ppf "@[<v>imports: %a@ exports: %a@ code size: %d@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf pid -> Format.pp_print_string ppf (Pid.short pid)))
    cu.cu_imports
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (name, pid) ->
         Format.fprintf ppf "%s@@%s" (Symbol.name name) (Pid.short pid)))
    cu.cu_exports (Lambda.size cu.cu_code)
