(** Recursive-descent parser for MiniSML.

    Infix expressions follow SML's default fixities:
    {v
      7  * / div mod          (left)
      6  + - ^                (left)
      5  :: @                 (right)
      4  = <> < > <= >=       (left)
      3  :=                   (left)
    v}
    with [andalso] binding tighter than [orelse], both below the table,
    and [handle]/type constraints weakest.  Match constructs ([fn],
    [case], [handle]) extend as far right as possible, as in SML. *)

(** [parse_unit ~file source] parses a whole compilation unit. *)
val parse_unit : file:string -> string -> Ast.unit_

(** [parse_exp ~file source] parses a single expression followed by EOF;
    used by the REPL and tests. *)
val parse_exp : file:string -> string -> Ast.exp

(** [parse_decs ~file source] parses a declaration sequence followed by
    EOF; used by the REPL. *)
val parse_decs : file:string -> string -> Ast.dec list
