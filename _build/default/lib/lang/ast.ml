module Symbol = Support.Symbol
module Loc = Support.Loc

type path = { qualifiers : Symbol.t list; base : Symbol.t }

let path_of_string s =
  match List.rev (String.split_on_char '.' s) with
  | [] -> invalid_arg "Ast.path_of_string"
  | base :: rev_quals ->
    {
      qualifiers = List.rev_map Symbol.intern rev_quals;
      base = Symbol.intern base;
    }

let path_to_string p =
  String.concat "."
    (List.map Symbol.name p.qualifiers @ [ Symbol.name p.base ])

let pp_path ppf p = Format.pp_print_string ppf (path_to_string p)

type ty = { ty_desc : ty_desc; ty_loc : Loc.t }

and ty_desc =
  | Tvar of Symbol.t
  | Tcon of ty list * path
  | Tarrow of ty * ty
  | Ttuple of ty list

type pat = { pat_desc : pat_desc; pat_loc : Loc.t }

and pat_desc =
  | Pwild
  | Pvar of Symbol.t
  | Pint of int
  | Pstring of string
  | Ptuple of pat list
  | Pcon of path * pat option
  | Plist of pat list
  | Pas of Symbol.t * pat
  | Pconstraint of pat * ty

type rule = { rule_pat : pat; rule_exp : exp }
and exp = { exp_desc : exp_desc; exp_loc : Loc.t }

and exp_desc =
  | Eint of int
  | Estring of string
  | Evar of path
  | Efn of rule list
  | Eapp of exp * exp
  | Etuple of exp list
  | Elist of exp list
  | Elet of dec list * exp
  | Eif of exp * exp * exp
  | Ecase of exp * rule list
  | Eandalso of exp * exp
  | Eorelse of exp * exp
  | Eraise of exp
  | Ehandle of exp * rule list
  | Econstraint of exp * ty
  | Eselect of int

and conbind = { con_name : Symbol.t; con_arg : ty option }

and datbind = {
  dat_tyvars : Symbol.t list;
  dat_name : Symbol.t;
  dat_cons : conbind list;
}

and typebind = {
  typ_tyvars : Symbol.t list;
  typ_name : Symbol.t;
  typ_defn : ty;
}

and funclause = { fc_name : Symbol.t; fc_pats : pat list; fc_body : exp }
and funbind = { fb_clauses : funclause list; fb_loc : Loc.t }
and dec = { dec_desc : dec_desc; dec_loc : Loc.t }

and dec_desc =
  | Dval of pat * exp
  | Dvalrec of (Symbol.t * rule list) list
  | Dfun of funbind list
  | Dtype of typebind list
  | Ddatatype of datbind list
  | Dexception of (Symbol.t * ty option) list
  | Dstructure of (Symbol.t * ascription option * strexp) list
  | Dsignature of (Symbol.t * sigexp) list
  | Dfunctor of funbinding list
  | Dlocal of dec list * dec list
  | Dopen of path list

and ascription = Transparent of sigexp | Opaque of sigexp

and funbinding = {
  fct_name : Symbol.t;
  fct_param : Symbol.t;
  fct_param_sig : sigexp;
  fct_ascription : ascription option;
  fct_body : strexp;
}

and strexp = { str_desc : str_desc; str_loc : Loc.t }

and str_desc =
  | Svar of path
  | Sstruct of dec list
  | Sapp of path * strexp
  | Sascribe of strexp * ascription
  | Slet of dec list * strexp

and sigexp = { sig_desc : sig_desc; sig_loc : Loc.t }

and sig_desc =
  | Gvar of Symbol.t
  | Gsig of spec list
  | Gwhere of sigexp * wherespec list

and wherespec = {
  ws_tyvars : Symbol.t list;
  ws_path : path;
  ws_defn : ty;
}

and spec = { spec_desc : spec_desc; spec_loc : Loc.t }

and spec_desc =
  | SPval of Symbol.t * ty
  | SPtype of Symbol.t list * Symbol.t * ty option
  | SPdatatype of datbind list
  | SPexception of Symbol.t * ty option
  | SPstructure of Symbol.t * sigexp
  | SPinclude of sigexp

type unit_ = { unit_file : string; unit_decs : dec list }
