lib/lang/lexer.mli: Support Token
