lib/lang/ast.mli: Format Support
