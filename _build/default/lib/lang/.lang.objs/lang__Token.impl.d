lib/lang/token.ml: Format Hashtbl List Printf
