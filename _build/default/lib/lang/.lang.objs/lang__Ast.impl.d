lib/lang/ast.ml: Format List String Support
