lib/lang/lexer.ml: Array Buffer Char List String Support Token
