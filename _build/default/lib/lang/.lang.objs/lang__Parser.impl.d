lib/lang/parser.ml: Ast Lexer List Support Token
