(** Lexical tokens of MiniSML. *)

type t =
  (* literals and identifiers *)
  | INT of int
  | STRING of string
  | ID of string  (** alphanumeric identifier, lowercase or uppercase *)
  | TYVAR of string  (** ['a] without the quote *)
  (* keywords *)
  | AND
  | ANDALSO
  | AS
  | CASE
  | DATATYPE
  | ELSE
  | END
  | EXCEPTION
  | FN
  | FUN
  | FUNCTOR
  | HANDLE
  | IF
  | IN
  | INCLUDE
  | LET
  | LOCAL
  | OF
  | OP
  | OPEN
  | ORELSE
  | RAISE
  | REC
  | SIG
  | SIGNATURE
  | STRUCT
  | STRUCTURE
  | THEN
  | TYPE
  | VAL
  | WHERE
  (* punctuation and operators *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | UNDERSCORE
  | BAR
  | EQUAL
  | DARROW  (** [=>] *)
  | ARROW  (** [->] *)
  | COLON
  | COLONGT  (** [:>] *)
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH  (** unused by the grammar but lexed for error quality *)
  | CARET  (** [^] *)
  | LESS
  | GREATER
  | LESSEQ
  | GREATEREQ
  | NOTEQ  (** [<>] *)
  | CONS  (** [::] *)
  | AT  (** [@] *)
  | BANG  (** [!] *)
  | ASSIGN  (** [:=] *)
  | HASH  (** [#] — tuple selectors *)
  | EOF

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [keyword s] maps a lexed identifier to its keyword token, if any. *)
val keyword : string -> t option
