module Symbol = Support.Symbol
open Ast

let pp_sym ppf sym = Format.pp_print_string ppf (Symbol.name sym)

let pp_list sep pp ppf items =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf sep)
    pp ppf items

let rec pp_ty ppf ty =
  match ty.ty_desc with
  | Tarrow (a, b) -> Format.fprintf ppf "%a -> %a" pp_ty_tuple a pp_ty b
  | _ -> pp_ty_tuple ppf ty

and pp_ty_tuple ppf ty =
  match ty.ty_desc with
  | Ttuple parts -> pp_list " * " pp_ty_app ppf parts
  | _ -> pp_ty_app ppf ty

and pp_ty_app ppf ty =
  match ty.ty_desc with
  | Tcon ([], path) -> pp_path ppf path
  | Tcon ([ arg ], path) ->
    Format.fprintf ppf "%a %a" pp_ty_atom arg pp_path path
  | Tcon (args, path) ->
    Format.fprintf ppf "(%a) %a" (pp_list ", " pp_ty) args pp_path path
  | _ -> pp_ty_atom ppf ty

and pp_ty_atom ppf ty =
  match ty.ty_desc with
  | Tvar name -> Format.fprintf ppf "'%a" pp_sym name
  | Tcon ([], path) -> pp_path ppf path
  | _ -> Format.fprintf ppf "(%a)" pp_ty ty

let rec pp_pat ppf pat =
  match pat.pat_desc with
  | Pconstraint (p, ty) -> Format.fprintf ppf "%a : %a" pp_pat_cons p pp_ty ty
  | _ -> pp_pat_cons ppf pat

and pp_pat_cons ppf pat =
  match pat.pat_desc with
  | Pcon (path, Some { pat_desc = Ptuple [ a; b ]; _ })
    when path.qualifiers = [] && Symbol.name path.base = "::" ->
    Format.fprintf ppf "%a :: %a" pp_pat_app a pp_pat_cons b
  | _ -> pp_pat_app ppf pat

and pp_pat_app ppf pat =
  match pat.pat_desc with
  | Pcon (path, Some arg) ->
    Format.fprintf ppf "%a %a" pp_path path pp_pat_atom arg
  | Pas (name, p) -> Format.fprintf ppf "%a as %a" pp_sym name pp_pat p
  | _ -> pp_pat_atom ppf pat

and pp_pat_atom ppf pat =
  match pat.pat_desc with
  | Pwild -> Format.pp_print_string ppf "_"
  | Pvar name -> pp_sym ppf name
  | Pint n -> if n < 0 then Format.fprintf ppf "~%d" (-n) else Format.fprintf ppf "%d" n
  | Pstring s -> Format.fprintf ppf "%S" s
  | Ptuple [] -> Format.pp_print_string ppf "()"
  | Ptuple pats -> Format.fprintf ppf "(%a)" (pp_list ", " pp_pat) pats
  | Pcon (path, None) -> pp_path ppf path
  | Plist pats -> Format.fprintf ppf "[%a]" (pp_list ", " pp_pat) pats
  | Pcon (_, Some _) | Pas _ | Pconstraint _ ->
    Format.fprintf ppf "(%a)" pp_pat pat

let rec pp_exp ppf exp =
  match exp.exp_desc with
  | Eif (c, t, e) ->
    Format.fprintf ppf "@[<hv>if %a@ then %a@ else %a@]" pp_exp c pp_exp t pp_exp e
  | Ecase (scrutinee, rules) ->
    Format.fprintf ppf "@[<hv>case %a of@ %a@]" pp_exp scrutinee pp_match rules
  | Efn rules -> Format.fprintf ppf "@[<hv>fn %a@]" pp_match rules
  | Eraise e -> Format.fprintf ppf "raise %a" pp_exp e
  | Ehandle (e, rules) ->
    Format.fprintf ppf "@[<hv>%a@ handle %a@]" pp_exp_app e pp_match rules
  | Eandalso (a, b) ->
    Format.fprintf ppf "%a andalso %a" pp_exp_app a pp_exp_app b
  | Eorelse (a, b) -> Format.fprintf ppf "%a orelse %a" pp_exp_app a pp_exp_app b
  | Econstraint (e, ty) -> Format.fprintf ppf "%a : %a" pp_exp_app e pp_ty ty
  | _ -> pp_exp_app ppf exp

and pp_match ppf rules =
  pp_list "@ | " (fun ppf r ->
      Format.fprintf ppf "@[%a =>@ %a@]" pp_pat r.rule_pat pp_exp r.rule_exp)
    ppf rules

and pp_exp_app ppf exp =
  match exp.exp_desc with
  | Eapp ({ exp_desc = Evar path; _ }, { exp_desc = Etuple [ a; b ]; _ })
    when path.qualifiers = [] && is_infix_name (Symbol.name path.base) ->
    Format.fprintf ppf "%a %s %a" pp_exp_atom a (Symbol.name path.base)
      pp_exp_atom b
  | Eapp (f, arg) -> Format.fprintf ppf "%a %a" pp_exp_app f pp_exp_atom arg
  | _ -> pp_exp_atom ppf exp

and is_infix_name = function
  | "+" | "-" | "*" | "/" | "div" | "mod" | "^" | "::" | "@" | "=" | "<>"
  | "<" | ">" | "<=" | ">=" | ":=" ->
    true
  | _ -> false

and pp_exp_atom ppf exp =
  match exp.exp_desc with
  | Eint n -> if n < 0 then Format.fprintf ppf "~%d" (-n) else Format.fprintf ppf "%d" n
  | Estring s -> Format.fprintf ppf "%S" s
  | Evar path ->
    if path.qualifiers = [] && is_infix_name (Symbol.name path.base) then
      Format.fprintf ppf "op %s" (Symbol.name path.base)
    else pp_path ppf path
  | Etuple [] -> Format.pp_print_string ppf "()"
  | Etuple exps -> Format.fprintf ppf "(%a)" (pp_list ", " pp_exp) exps
  | Elist exps -> Format.fprintf ppf "[%a]" (pp_list ", " pp_exp) exps
  | Eselect n -> Format.fprintf ppf "#%d" n
  | Elet (decs, body) ->
    Format.fprintf ppf "@[<hv>let@;<1 2>@[<v>%a@]@ in@;<1 2>%a@ end@]"
      (pp_list "@ " pp_dec) decs pp_exp body
  | Eapp _ | Eif _ | Ecase _ | Efn _ | Eraise _ | Ehandle _ | Eandalso _
  | Eorelse _ | Econstraint _ ->
    Format.fprintf ppf "(%a)" pp_exp exp

and pp_dec ppf dec =
  match dec.dec_desc with
  | Dval (pat, exp) ->
    Format.fprintf ppf "@[<hv 2>val %a =@ %a@]" pp_pat pat pp_exp exp
  | Dvalrec binds ->
    let pp_bind ppf (name, rules) =
      Format.fprintf ppf "%a = fn %a" pp_sym name pp_match rules
    in
    Format.fprintf ppf "@[<hv 2>val rec %a@]" (pp_list "@ and " pp_bind) binds
  | Dfun binds ->
    let pp_clause ppf clause =
      Format.fprintf ppf "%a %a = %a" pp_sym clause.fc_name
        (pp_list " " pp_pat_atom) clause.fc_pats pp_exp clause.fc_body
    in
    let pp_bind ppf bind = pp_list "@   | " pp_clause ppf bind.fb_clauses in
    Format.fprintf ppf "@[<hv 2>fun %a@]" (pp_list "@ and " pp_bind) binds
  | Dtype binds ->
    let pp_bind ppf bind =
      Format.fprintf ppf "%a%a = %a" pp_tyvars bind.typ_tyvars pp_sym
        bind.typ_name pp_ty bind.typ_defn
    in
    Format.fprintf ppf "@[type %a@]" (pp_list "@ and " pp_bind) binds
  | Ddatatype binds -> Format.fprintf ppf "@[datatype %a@]" pp_datbinds binds
  | Dexception binds ->
    let pp_bind ppf (name, arg) =
      match arg with
      | None -> pp_sym ppf name
      | Some ty -> Format.fprintf ppf "%a of %a" pp_sym name pp_ty ty
    in
    Format.fprintf ppf "@[exception %a@]" (pp_list "@ and " pp_bind) binds
  | Dstructure binds ->
    let pp_bind ppf (name, ascription, body) =
      Format.fprintf ppf "%a%a =@ %a" pp_sym name pp_opt_ascription ascription
        pp_strexp body
    in
    Format.fprintf ppf "@[<hv 2>structure %a@]" (pp_list "@ and " pp_bind) binds
  | Dsignature binds ->
    let pp_bind ppf (name, body) =
      Format.fprintf ppf "%a =@ %a" pp_sym name pp_sigexp body
    in
    Format.fprintf ppf "@[<hv 2>signature %a@]" (pp_list "@ and " pp_bind) binds
  | Dfunctor binds ->
    let pp_bind ppf fb =
      Format.fprintf ppf "%a (%a : %a)%a =@ %a" pp_sym fb.fct_name pp_sym
        fb.fct_param pp_sigexp fb.fct_param_sig pp_opt_ascription
        fb.fct_ascription pp_strexp fb.fct_body
    in
    Format.fprintf ppf "@[<hv 2>functor %a@]" (pp_list "@ and " pp_bind) binds
  | Dlocal (hidden, visible) ->
    Format.fprintf ppf "@[<v>local@;<1 2>@[<v>%a@]@ in@;<1 2>@[<v>%a@]@ end@]"
      (pp_list "@ " pp_dec) hidden (pp_list "@ " pp_dec) visible
  | Dopen paths -> Format.fprintf ppf "open %a" (pp_list " " pp_path) paths

and pp_tyvars ppf = function
  | [] -> ()
  | [ one ] -> Format.fprintf ppf "'%a " pp_sym one
  | several ->
    Format.fprintf ppf "(%a) "
      (pp_list ", " (fun ppf tv -> Format.fprintf ppf "'%a" pp_sym tv))
      several

and pp_datbinds ppf binds =
  let pp_con ppf con =
    match con.con_arg with
    | None -> pp_sym ppf con.con_name
    | Some ty -> Format.fprintf ppf "%a of %a" pp_sym con.con_name pp_ty ty
  in
  let pp_bind ppf bind =
    Format.fprintf ppf "%a%a = %a" pp_tyvars bind.dat_tyvars pp_sym
      bind.dat_name (pp_list " | " pp_con) bind.dat_cons
  in
  pp_list "@ and " pp_bind ppf binds

and pp_opt_ascription ppf = function
  | None -> ()
  | Some (Transparent sigexp) -> Format.fprintf ppf " : %a" pp_sigexp sigexp
  | Some (Opaque sigexp) -> Format.fprintf ppf " :> %a" pp_sigexp sigexp

and pp_strexp ppf strexp =
  match strexp.str_desc with
  | Svar path -> pp_path ppf path
  | Sstruct decs ->
    Format.fprintf ppf "@[<v>struct@;<1 2>@[<v>%a@]@ end@]" (pp_list "@ " pp_dec)
      decs
  | Sapp (path, arg) -> Format.fprintf ppf "%a(%a)" pp_path path pp_strexp arg
  | Sascribe (body, Transparent sigexp) ->
    Format.fprintf ppf "%a : %a" pp_strexp body pp_sigexp sigexp
  | Sascribe (body, Opaque sigexp) ->
    Format.fprintf ppf "%a :> %a" pp_strexp body pp_sigexp sigexp
  | Slet (decs, body) ->
    Format.fprintf ppf "@[<v>let@;<1 2>@[<v>%a@]@ in@;<1 2>%a@ end@]"
      (pp_list "@ " pp_dec) decs pp_strexp body

and pp_sigexp ppf sigexp =
  match sigexp.sig_desc with
  | Gvar name -> pp_sym ppf name
  | Gsig specs ->
    Format.fprintf ppf "@[<v>sig@;<1 2>@[<v>%a@]@ end@]" (pp_list "@ " pp_spec)
      specs
  | Gwhere (base, wherespecs) ->
    let pp_ws ppf ws =
      Format.fprintf ppf "type %a%a = %a" pp_tyvars ws.ws_tyvars pp_path
        ws.ws_path pp_ty ws.ws_defn
    in
    Format.fprintf ppf "%a where %a" pp_sigexp base (pp_list " and " pp_ws)
      wherespecs

and pp_spec ppf spec =
  match spec.spec_desc with
  | SPval (name, ty) -> Format.fprintf ppf "val %a : %a" pp_sym name pp_ty ty
  | SPtype (tyvars, name, None) ->
    Format.fprintf ppf "type %a%a" pp_tyvars tyvars pp_sym name
  | SPtype (tyvars, name, Some ty) ->
    Format.fprintf ppf "type %a%a = %a" pp_tyvars tyvars pp_sym name pp_ty ty
  | SPdatatype binds -> Format.fprintf ppf "@[datatype %a@]" pp_datbinds binds
  | SPexception (name, None) -> Format.fprintf ppf "exception %a" pp_sym name
  | SPexception (name, Some ty) ->
    Format.fprintf ppf "exception %a of %a" pp_sym name pp_ty ty
  | SPstructure (name, sigexp) ->
    Format.fprintf ppf "@[<hv 2>structure %a :@ %a@]" pp_sym name pp_sigexp
      sigexp
  | SPinclude sigexp -> Format.fprintf ppf "include %a" pp_sigexp sigexp

let pp_unit ppf unit_ =
  Format.fprintf ppf "@[<v>%a@]" (pp_list "@ " pp_dec) unit_.unit_decs

let exp_to_string exp = Format.asprintf "%a" pp_exp exp
let dec_to_string dec = Format.asprintf "%a" pp_dec dec
let unit_to_string unit_ = Format.asprintf "%a" pp_unit unit_
