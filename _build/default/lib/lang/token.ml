type t =
  | INT of int
  | STRING of string
  | ID of string
  | TYVAR of string
  | AND
  | ANDALSO
  | AS
  | CASE
  | DATATYPE
  | ELSE
  | END
  | EXCEPTION
  | FN
  | FUN
  | FUNCTOR
  | HANDLE
  | IF
  | IN
  | INCLUDE
  | LET
  | LOCAL
  | OF
  | OP
  | OPEN
  | ORELSE
  | RAISE
  | REC
  | SIG
  | SIGNATURE
  | STRUCT
  | STRUCTURE
  | THEN
  | TYPE
  | VAL
  | WHERE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | UNDERSCORE
  | BAR
  | EQUAL
  | DARROW
  | ARROW
  | COLON
  | COLONGT
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | CARET
  | LESS
  | GREATER
  | LESSEQ
  | GREATEREQ
  | NOTEQ
  | CONS
  | AT
  | BANG
  | ASSIGN
  | HASH
  | EOF

let keywords =
  [
    ("and", AND);
    ("andalso", ANDALSO);
    ("as", AS);
    ("case", CASE);
    ("datatype", DATATYPE);
    ("else", ELSE);
    ("end", END);
    ("exception", EXCEPTION);
    ("fn", FN);
    ("fun", FUN);
    ("functor", FUNCTOR);
    ("handle", HANDLE);
    ("if", IF);
    ("in", IN);
    ("include", INCLUDE);
    ("let", LET);
    ("local", LOCAL);
    ("of", OF);
    ("op", OP);
    ("open", OPEN);
    ("orelse", ORELSE);
    ("raise", RAISE);
    ("rec", REC);
    ("sig", SIG);
    ("signature", SIGNATURE);
    ("struct", STRUCT);
    ("structure", STRUCTURE);
    ("then", THEN);
    ("type", TYPE);
    ("val", VAL);
    ("where", WHERE);
  ]

let keyword_table =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, tok) -> Hashtbl.add tbl name tok) keywords;
  tbl

let keyword name = Hashtbl.find_opt keyword_table name

let to_string = function
  | INT n -> if n < 0 then "~" ^ string_of_int (-n) else string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | ID s -> s
  | TYVAR s -> "'" ^ s
  | AND -> "and"
  | ANDALSO -> "andalso"
  | AS -> "as"
  | CASE -> "case"
  | DATATYPE -> "datatype"
  | ELSE -> "else"
  | END -> "end"
  | EXCEPTION -> "exception"
  | FN -> "fn"
  | FUN -> "fun"
  | FUNCTOR -> "functor"
  | HANDLE -> "handle"
  | IF -> "if"
  | IN -> "in"
  | INCLUDE -> "include"
  | LET -> "let"
  | LOCAL -> "local"
  | OF -> "of"
  | OP -> "op"
  | OPEN -> "open"
  | ORELSE -> "orelse"
  | RAISE -> "raise"
  | REC -> "rec"
  | SIG -> "sig"
  | SIGNATURE -> "signature"
  | STRUCT -> "struct"
  | STRUCTURE -> "structure"
  | THEN -> "then"
  | TYPE -> "type"
  | VAL -> "val"
  | WHERE -> "where"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | UNDERSCORE -> "_"
  | BAR -> "|"
  | EQUAL -> "="
  | DARROW -> "=>"
  | ARROW -> "->"
  | COLON -> ":"
  | COLONGT -> ":>"
  | DOT -> "."
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | CARET -> "^"
  | LESS -> "<"
  | GREATER -> ">"
  | LESSEQ -> "<="
  | GREATEREQ -> ">="
  | NOTEQ -> "<>"
  | CONS -> "::"
  | AT -> "@"
  | BANG -> "!"
  | ASSIGN -> ":="
  | HASH -> "#"
  | EOF -> "<eof>"

let pp ppf tok = Format.pp_print_string ppf (to_string tok)
