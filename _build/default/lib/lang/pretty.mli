(** Pretty-printing of MiniSML abstract syntax.

    The output is valid MiniSML concrete syntax (modulo parenthesisation,
    which is conservative), so [parse ∘ print ∘ parse = parse ∘ print] —
    a property the test suite checks. *)

val pp_ty : Format.formatter -> Ast.ty -> unit
val pp_pat : Format.formatter -> Ast.pat -> unit
val pp_exp : Format.formatter -> Ast.exp -> unit
val pp_dec : Format.formatter -> Ast.dec -> unit
val pp_sigexp : Format.formatter -> Ast.sigexp -> unit
val pp_strexp : Format.formatter -> Ast.strexp -> unit
val pp_unit : Format.formatter -> Ast.unit_ -> unit
val exp_to_string : Ast.exp -> string
val dec_to_string : Ast.dec -> string
val unit_to_string : Ast.unit_ -> string
