(** Abstract syntax of MiniSML.

    The subset of Standard ML needed to reproduce the paper: the full
    module language (structures, signatures with abstract/manifest type
    specs, [where type], transparent and opaque ascription, functors) over
    a Hindley–Milner core with datatypes, pattern matching and
    exceptions.

    Every node carries the source location of the phrase for
    diagnostics. *)

module Symbol := Support.Symbol
module Loc := Support.Loc

(** A possibly-qualified identifier [A.B.x]. *)
type path = { qualifiers : Symbol.t list; base : Symbol.t }

val path_of_string : string -> path
(** Split a dotted name; for tests and the initial basis. *)

val pp_path : Format.formatter -> path -> unit
val path_to_string : path -> string

(** Type expressions. *)
type ty = { ty_desc : ty_desc; ty_loc : Loc.t }

and ty_desc =
  | Tvar of Symbol.t  (** ['a] *)
  | Tcon of ty list * path  (** [(ty, …) longtycon]; nullary written bare *)
  | Tarrow of ty * ty
  | Ttuple of ty list  (** [t1 * t2 * …], length >= 2 *)

(** Patterns. *)
type pat = { pat_desc : pat_desc; pat_loc : Loc.t }

and pat_desc =
  | Pwild
  | Pvar of Symbol.t  (** also constructor uses; resolved in elaboration *)
  | Pint of int
  | Pstring of string
  | Ptuple of pat list  (** length >= 2 *)
  | Pcon of path * pat option  (** [C] or [C pat]; includes [::] *)
  | Plist of pat list  (** [[p1, …, pn]] sugar *)
  | Pas of Symbol.t * pat  (** [x as pat] *)
  | Pconstraint of pat * ty

(** A clause of a [fn], [case] or [handle] match. *)
type rule = { rule_pat : pat; rule_exp : exp }

(** Expressions. *)
and exp = { exp_desc : exp_desc; exp_loc : Loc.t }

and exp_desc =
  | Eint of int
  | Estring of string
  | Evar of path  (** variables and constructors *)
  | Efn of rule list
  | Eapp of exp * exp
  | Etuple of exp list  (** length >= 2; unit is [Etuple []] *)
  | Elist of exp list
  | Elet of dec list * exp
  | Eif of exp * exp * exp
  | Ecase of exp * rule list
  | Eandalso of exp * exp
  | Eorelse of exp * exp
  | Eraise of exp
  | Ehandle of exp * rule list
  | Econstraint of exp * ty
  | Eselect of int  (** [#n], a tuple selector; must be applied *)

(** One arm of a [datatype] declaration. *)
and conbind = { con_name : Symbol.t; con_arg : ty option }

and datbind = {
  dat_tyvars : Symbol.t list;
  dat_name : Symbol.t;
  dat_cons : conbind list;
}

and typebind = {
  typ_tyvars : Symbol.t list;
  typ_name : Symbol.t;
  typ_defn : ty;
}

(** Function-definition clause: [fun f p1 … pn = e]. *)
and funclause = { fc_name : Symbol.t; fc_pats : pat list; fc_body : exp }

and funbind = { fb_clauses : funclause list; fb_loc : Loc.t }

(** Declarations (core and module levels are merged, as in SML). *)
and dec = { dec_desc : dec_desc; dec_loc : Loc.t }

and dec_desc =
  | Dval of pat * exp
  | Dvalrec of (Symbol.t * rule list) list  (** [val rec f = fn …] *)
  | Dfun of funbind list  (** desugared to [Dvalrec] by elaboration *)
  | Dtype of typebind list
  | Ddatatype of datbind list
  | Dexception of (Symbol.t * ty option) list
  | Dstructure of (Symbol.t * ascription option * strexp) list
  | Dsignature of (Symbol.t * sigexp) list
  | Dfunctor of funbinding list
  | Dlocal of dec list * dec list
  | Dopen of path list

and ascription = Transparent of sigexp | Opaque of sigexp

and funbinding = {
  fct_name : Symbol.t;
  fct_param : Symbol.t;
  fct_param_sig : sigexp;
  fct_ascription : ascription option;
  fct_body : strexp;
}

(** Structure expressions. *)
and strexp = { str_desc : str_desc; str_loc : Loc.t }

and str_desc =
  | Svar of path
  | Sstruct of dec list
  | Sapp of path * strexp  (** functor application *)
  | Sascribe of strexp * ascription
  | Slet of dec list * strexp

(** Signature expressions. *)
and sigexp = { sig_desc : sig_desc; sig_loc : Loc.t }

and sig_desc =
  | Gvar of Symbol.t
  | Gsig of spec list
  | Gwhere of sigexp * wherespec list

and wherespec = {
  ws_tyvars : Symbol.t list;
  ws_path : path;
  ws_defn : ty;
}

(** Signature specifications. *)
and spec = { spec_desc : spec_desc; spec_loc : Loc.t }

and spec_desc =
  | SPval of Symbol.t * ty
  | SPtype of Symbol.t list * Symbol.t * ty option
      (** [None] = abstract, [Some ty] = manifest *)
  | SPdatatype of datbind list
  | SPexception of Symbol.t * ty option
  | SPstructure of Symbol.t * sigexp
  | SPinclude of sigexp

(** A compilation unit: the parsed contents of one source file. *)
type unit_ = { unit_file : string; unit_decs : dec list }
