lib/depend/scan.mli: Lang Support
