lib/depend/depgraph.mli: Lang Scan Support
