lib/depend/scan.ml: Lang List Option Support
