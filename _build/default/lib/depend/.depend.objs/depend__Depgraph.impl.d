lib/depend/depgraph.ml: Hashtbl List Scan String Support
