(** Source-level dependency analysis (section 8: the IRM "analyzes
    dependencies between files" automatically, with no makefile).

    Only module-level names matter: separately compiled units export
    structures, signatures and functors, so a unit depends on exactly
    the units defining the free module names it mentions. *)

module Symbol := Support.Symbol

type summary = {
  defines : Symbol.Set.t;  (** top-level module names this unit binds *)
  refers : Symbol.Set.t;  (** free module names it mentions *)
}

(** [scan unit] — compute both sets from the parsed syntax. *)
val scan : Lang.Ast.unit_ -> summary

(** [scan_source ~file source] — parse and scan. *)
val scan_source : file:string -> string -> summary
