module Symbol = Support.Symbol
module A = Lang.Ast

type summary = { defines : Symbol.Set.t; refers : Symbol.Set.t }

type state = {
  mutable refs : Symbol.Set.t;
  mutable top_defines : Symbol.Set.t;
}

(* The root of a qualified reference is a structure name; bare value
   names are never cross-unit references. *)
let path_root (path : A.path) =
  match path.A.qualifiers with
  | root :: _ -> Some root
  | [] -> None

(* A path in *module position* refers to a module even when bare. *)
let module_path_root (path : A.path) =
  match path.A.qualifiers with
  | root :: _ -> root
  | [] -> path.A.base

let refer st bound name =
  if not (Symbol.Set.mem name bound) then
    st.refs <- Symbol.Set.add name st.refs

let refer_path st bound path =
  match path_root path with
  | Some root -> refer st bound root
  | None -> ()

let rec scan_ty st bound (ty : A.ty) =
  match ty.A.ty_desc with
  | A.Tvar _ -> ()
  | A.Tcon (args, path) ->
    refer_path st bound path;
    List.iter (scan_ty st bound) args
  | A.Tarrow (a, b) ->
    scan_ty st bound a;
    scan_ty st bound b
  | A.Ttuple parts -> List.iter (scan_ty st bound) parts

let rec scan_pat st bound (pat : A.pat) =
  match pat.A.pat_desc with
  | A.Pwild | A.Pvar _ | A.Pint _ | A.Pstring _ -> ()
  | A.Ptuple parts | A.Plist parts -> List.iter (scan_pat st bound) parts
  | A.Pcon (path, arg) ->
    refer_path st bound path;
    Option.iter (scan_pat st bound) arg
  | A.Pas (_, inner) -> scan_pat st bound inner
  | A.Pconstraint (inner, ty) ->
    scan_pat st bound inner;
    scan_ty st bound ty

let rec scan_exp st bound (exp : A.exp) =
  match exp.A.exp_desc with
  | A.Eint _ | A.Estring _ | A.Eselect _ -> ()
  | A.Evar path -> refer_path st bound path
  | A.Efn rules -> List.iter (scan_rule st bound) rules
  | A.Eapp (f, x) ->
    scan_exp st bound f;
    scan_exp st bound x
  | A.Etuple parts | A.Elist parts -> List.iter (scan_exp st bound) parts
  | A.Elet (decs, body) ->
    let bound = scan_decs st bound decs in
    scan_exp st bound body
  | A.Eif (a, b, c) ->
    scan_exp st bound a;
    scan_exp st bound b;
    scan_exp st bound c
  | A.Ecase (scrutinee, rules) ->
    scan_exp st bound scrutinee;
    List.iter (scan_rule st bound) rules
  | A.Eandalso (a, b) | A.Eorelse (a, b) ->
    scan_exp st bound a;
    scan_exp st bound b
  | A.Eraise e -> scan_exp st bound e
  | A.Ehandle (body, rules) ->
    scan_exp st bound body;
    List.iter (scan_rule st bound) rules
  | A.Econstraint (body, ty) ->
    scan_exp st bound body;
    scan_ty st bound ty

and scan_rule st bound rule =
  scan_pat st bound rule.A.rule_pat;
  scan_exp st bound rule.A.rule_exp

(* Returns [bound] extended with the module names the declarations
   introduce. *)
and scan_decs st bound decs = List.fold_left (scan_dec st) bound decs

and scan_dec st bound (dec : A.dec) =
  match dec.A.dec_desc with
  | A.Dval (pat, exp) ->
    scan_pat st bound pat;
    scan_exp st bound exp;
    bound
  | A.Dvalrec binds ->
    List.iter (fun (_, rules) -> List.iter (scan_rule st bound) rules) binds;
    bound
  | A.Dfun funbinds ->
    List.iter
      (fun fb ->
        List.iter
          (fun clause ->
            List.iter (scan_pat st bound) clause.A.fc_pats;
            scan_exp st bound clause.A.fc_body)
          fb.A.fb_clauses)
      funbinds;
    bound
  | A.Dtype binds ->
    List.iter (fun tb -> scan_ty st bound tb.A.typ_defn) binds;
    bound
  | A.Ddatatype binds ->
    List.iter
      (fun db ->
        List.iter
          (fun cb -> Option.iter (scan_ty st bound) cb.A.con_arg)
          db.A.dat_cons)
      binds;
    bound
  | A.Dexception binds ->
    List.iter (fun (_, arg) -> Option.iter (scan_ty st bound) arg) binds;
    bound
  | A.Dstructure binds ->
    List.iter
      (fun (_, ascription, body) ->
        scan_opt_ascription st bound ascription;
        scan_strexp st bound body)
      binds;
    List.fold_left
      (fun bound (name, _, _) -> Symbol.Set.add name bound)
      bound binds
  | A.Dsignature binds ->
    List.iter (fun (_, sigexp) -> scan_sigexp st bound sigexp) binds;
    List.fold_left (fun bound (name, _) -> Symbol.Set.add name bound) bound binds
  | A.Dfunctor binds ->
    List.iter
      (fun fb ->
        scan_sigexp st bound fb.A.fct_param_sig;
        let inner = Symbol.Set.add fb.A.fct_param bound in
        scan_opt_ascription st inner fb.A.fct_ascription;
        scan_strexp st inner fb.A.fct_body)
      binds;
    List.fold_left
      (fun bound fb -> Symbol.Set.add fb.A.fct_name bound)
      bound binds
  | A.Dlocal (hidden, visible) ->
    let bound' = scan_decs st bound hidden in
    scan_decs st bound' visible
  | A.Dopen paths ->
    List.iter (fun path -> refer st bound (module_path_root path)) paths;
    bound

and scan_opt_ascription st bound = function
  | None -> ()
  | Some (A.Transparent sigexp) | Some (A.Opaque sigexp) ->
    scan_sigexp st bound sigexp

and scan_strexp st bound (strexp : A.strexp) =
  match strexp.A.str_desc with
  | A.Svar path -> refer st bound (module_path_root path)
  | A.Sstruct decs -> ignore (scan_decs st bound decs)
  | A.Sapp (path, arg) ->
    refer st bound (module_path_root path);
    scan_strexp st bound arg
  | A.Sascribe (body, ascription) ->
    scan_strexp st bound body;
    scan_opt_ascription st bound (Some ascription)
  | A.Slet (decs, body) ->
    let bound = scan_decs st bound decs in
    scan_strexp st bound body

and scan_sigexp st bound (sigexp : A.sigexp) =
  match sigexp.A.sig_desc with
  | A.Gvar name -> refer st bound name
  | A.Gsig specs -> List.iter (scan_spec st bound) specs
  | A.Gwhere (base, wherespecs) ->
    scan_sigexp st bound base;
    List.iter
      (fun ws ->
        refer_path st bound ws.A.ws_path;
        scan_ty st bound ws.A.ws_defn)
      wherespecs

and scan_spec st bound (spec : A.spec) =
  match spec.A.spec_desc with
  | A.SPval (_, ty) -> scan_ty st bound ty
  | A.SPtype (_, _, defn) -> Option.iter (scan_ty st bound) defn
  | A.SPdatatype binds ->
    List.iter
      (fun db ->
        List.iter
          (fun cb -> Option.iter (scan_ty st bound) cb.A.con_arg)
          db.A.dat_cons)
      binds
  | A.SPexception (_, arg) -> Option.iter (scan_ty st bound) arg
  | A.SPstructure (_, sigexp) -> scan_sigexp st bound sigexp
  | A.SPinclude sigexp -> scan_sigexp st bound sigexp

let top_level_defines decs =
  let rec go acc (dec : A.dec) =
    match dec.A.dec_desc with
    | A.Dstructure binds ->
      List.fold_left (fun acc (name, _, _) -> Symbol.Set.add name acc) acc binds
    | A.Dsignature binds ->
      List.fold_left (fun acc (name, _) -> Symbol.Set.add name acc) acc binds
    | A.Dfunctor binds ->
      List.fold_left
        (fun acc fb -> Symbol.Set.add fb.A.fct_name acc)
        acc binds
    | A.Dlocal (_, visible) -> List.fold_left go acc visible
    | A.Dval _ | A.Dvalrec _ | A.Dfun _ | A.Dtype _ | A.Ddatatype _
    | A.Dexception _ | A.Dopen _ ->
      acc
  in
  List.fold_left go Symbol.Set.empty decs

let scan (unit_ : A.unit_) =
  let st = { refs = Symbol.Set.empty; top_defines = Symbol.Set.empty } in
  st.top_defines <- top_level_defines unit_.A.unit_decs;
  ignore (scan_decs st Symbol.Set.empty unit_.A.unit_decs);
  (* names defined by the unit itself are not external references *)
  { defines = st.top_defines; refers = Symbol.Set.diff st.refs st.top_defines }

let scan_source ~file source = scan (Lang.Parser.parse_unit ~file source)
