lib/lambda/simplify.ml: Lambda List Statics String Support
