lib/lambda/translate.ml: Lambda List Statics Support
