lib/lambda/translate.mli: Lambda Statics Support
