lib/lambda/lambda.mli: Digestkit Format Statics Support
