lib/lambda/simplify.mli: Lambda
