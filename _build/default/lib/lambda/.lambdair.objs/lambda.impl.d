lib/lambda/lambda.ml: Digestkit Format List Statics Support
