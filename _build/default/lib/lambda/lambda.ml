module Symbol = Support.Symbol
module Pid = Digestkit.Pid

type lvar = Symbol.t

type t =
  | Lvar of lvar
  | Lint of int
  | Lstring of string
  | Limport of Pid.t
  | Lprim of Statics.Prim.t
  | Lbasisexn of Symbol.t
  | Lfn of lvar * t
  | Lapp of t * t
  | Llet of lvar * t * t
  | Lfix of (lvar * lvar * t) list * t
  | Ltuple of t list
  | Lselect of int * t
  | Lrecord of (Symbol.t * t) list
  | Lfield of Symbol.t * t
  | Lcon0 of int
  | Lcon of int * t
  | Lcontag of t
  | Lconarg of t
  | Lnewexn of Symbol.t * bool
  | Lmkexn0 of t
  | Lexnid of t
  | Lexnarg of t
  | Lif of t * t * t
  | Lraise of t
  | Lhandle of t * lvar * t

let fold_subterms f acc term =
  match term with
  | Lvar _ | Lint _ | Lstring _ | Limport _ | Lprim _ | Lbasisexn _
  | Lcon0 _ | Lnewexn _ ->
    acc
  | Lfn (_, body) -> f acc body
  | Lapp (a, b) | Llet (_, a, b) -> f (f acc a) b
  | Lfix (binds, body) ->
    f (List.fold_left (fun acc (_, _, b) -> f acc b) acc binds) body
  | Ltuple parts -> List.fold_left f acc parts
  | Lselect (_, a) | Lfield (_, a) | Lcon (_, a) | Lcontag a | Lconarg a
  | Lmkexn0 a | Lexnid a | Lexnarg a | Lraise a ->
    f acc a
  | Lrecord fields -> List.fold_left (fun acc (_, v) -> f acc v) acc fields
  | Lif (a, b, c) -> f (f (f acc a) b) c
  | Lhandle (a, _, b) -> f (f acc a) b

let imports term =
  let seen = Pid.Table.create 8 in
  let order = ref [] in
  let rec go () term =
    (match term with
    | Limport pid ->
      if not (Pid.Table.mem seen pid) then begin
        Pid.Table.add seen pid ();
        order := pid :: !order
      end
    | _ -> ());
    fold_subterms go () term
  in
  go () term;
  List.rev !order

let rec size term = fold_subterms (fun acc sub -> acc + size sub) 1 term

let rec pp ppf term =
  let list sep f = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf sep) f in
  match term with
  | Lvar v -> Format.pp_print_string ppf (Symbol.name v)
  | Lint n -> Format.pp_print_int ppf n
  | Lstring s -> Format.fprintf ppf "%S" s
  | Limport pid -> Format.fprintf ppf "import:%s" (Pid.short pid)
  | Lprim p -> Format.fprintf ppf "%%%s" (Statics.Prim.name p)
  | Lbasisexn s -> Format.fprintf ppf "%%exn:%s" (Symbol.name s)
  | Lfn (v, body) -> Format.fprintf ppf "@[<2>(fn %s =>@ %a)@]" (Symbol.name v) pp body
  | Lapp (f, x) -> Format.fprintf ppf "@[<2>(%a@ %a)@]" pp f pp x
  | Llet (v, e, body) ->
    Format.fprintf ppf "@[<2>(let %s = %a in@ %a)@]" (Symbol.name v) pp e pp body
  | Lfix (binds, body) ->
    Format.fprintf ppf "@[<2>(fix %a in@ %a)@]"
      (list " and " (fun ppf (f, x, b) ->
           Format.fprintf ppf "%s %s = %a" (Symbol.name f) (Symbol.name x) pp b))
      binds pp body
  | Ltuple parts -> Format.fprintf ppf "(%a)" (list ", " pp) parts
  | Lselect (i, e) -> Format.fprintf ppf "#%d %a" i pp e
  | Lrecord fields ->
    Format.fprintf ppf "{%a}"
      (list ", " (fun ppf (n, v) -> Format.fprintf ppf "%s=%a" (Symbol.name n) pp v))
      fields
  | Lfield (n, e) -> Format.fprintf ppf "%a.%s" pp e (Symbol.name n)
  | Lcon0 tag -> Format.fprintf ppf "con%d" tag
  | Lcon (tag, e) -> Format.fprintf ppf "con%d(%a)" tag pp e
  | Lcontag e -> Format.fprintf ppf "tag(%a)" pp e
  | Lconarg e -> Format.fprintf ppf "arg(%a)" pp e
  | Lnewexn (name, has_arg) ->
    Format.fprintf ppf "newexn(%s%s)" (Symbol.name name) (if has_arg then "/1" else "")
  | Lmkexn0 e -> Format.fprintf ppf "mkexn0(%a)" pp e
  | Lexnid e -> Format.fprintf ppf "exnid(%a)" pp e
  | Lexnarg e -> Format.fprintf ppf "exnarg(%a)" pp e
  | Lif (c, t, e) -> Format.fprintf ppf "@[<2>(if %a@ then %a@ else %a)@]" pp c pp t pp e
  | Lraise e -> Format.fprintf ppf "raise(%a)" pp e
  | Lhandle (e, v, h) ->
    Format.fprintf ppf "@[<2>(%a@ handle %s => %a)@]" pp e (Symbol.name v) pp h

let to_string term = Format.asprintf "%a" pp term
