(** The lambda intermediate representation.

    A compiled unit's code is a lambda term whose only free references
    are [Limport] nodes naming the dynamic pids of other units' exports —
    the "machine code with a list of imports" of the paper's section 3.
    Everything else is closed: local variables are process-unique
    symbols, primitives and predefined exceptions are named directly. *)

module Symbol := Support.Symbol

type lvar = Symbol.t

type t =
  | Lvar of lvar
  | Lint of int
  | Lstring of string
  | Limport of Digestkit.Pid.t  (** another unit's export *)
  | Lprim of Statics.Prim.t  (** primitive as a value *)
  | Lbasisexn of Symbol.t  (** predefined exception identity *)
  | Lfn of lvar * t
  | Lapp of t * t
  | Llet of lvar * t * t
  | Lfix of (lvar * lvar * t) list * t
      (** mutually recursive functions: (name, parameter, body) *)
  | Ltuple of t list
  | Lselect of int * t  (** 0-based tuple projection *)
  | Lrecord of (Symbol.t * t) list  (** structure value *)
  | Lfield of Symbol.t * t  (** structure component access *)
  | Lcon0 of int  (** nullary datatype constructor *)
  | Lcon of int * t  (** unary datatype constructor *)
  | Lcontag of t  (** tag of a constructed value, as an int *)
  | Lconarg of t  (** argument of a unary constructed value *)
  | Lnewexn of Symbol.t * bool  (** fresh exception identity (generative) *)
  | Lmkexn0 of t  (** packet from a nullary exception identity *)
  | Lexnid of t  (** identity (an int) of a packet or exception id *)
  | Lexnarg of t  (** argument carried by a packet *)
  | Lif of t * t * t  (** scrutinises a [bool] constructor value *)
  | Lraise of t
  | Lhandle of t * lvar * t

(** Free imports, in first-occurrence order, deduplicated. *)
val imports : t -> Digestkit.Pid.t list

(** [fold_subterms f acc t] — fold [f] over the immediate subterms of
    [t] (not recursive); the generic traversal the analyses build on. *)
val fold_subterms : ('a -> t -> 'a) -> 'a -> t -> 'a

(** Count of nodes, used by benches to report code sizes. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
