(** A conservative simplifier over the lambda IR.

    The match compiler and the record-based module translation produce
    noisy code (join-point thunks, selections from literal tuples,
    fields of literal records).  This pass cleans it up with
    semantics-preserving rewrites:

    - beta reduction: [(fn x => body) arg ⇒ let x = arg in body];
    - inlining of atomic bindings (variables, constants, primitives);
    - dead pure bindings eliminated;
    - projections from literal tuples/records reduced;
    - constant folding of integer arithmetic, comparisons and boolean
      primitives (division by a literal zero is left in place, it must
      raise [Div] at run time);
    - constructor tag/argument extraction on literal constructors;
    - [if] over a literal boolean.

    All binders produced by elaboration are globally unique, so
    substitution needs no renaming (checked by the translation
    invariants test). *)

(** [term t] — simplify to a fixpoint (bounded number of passes). *)
val term : Lambda.t -> Lambda.t

type stats = { before_nodes : int; after_nodes : int; passes : int }

(** [term_with_stats t] *)
val term_with_stats : Lambda.t -> Lambda.t * stats
