(** Translation from elaborated syntax to the lambda IR, including
    pattern-match compilation.

    Matches compile to sequential tests with join-point thunks (each
    rule's failure continuation is bound once, so compiled code is
    linear in the source match).  Datatype constructors become integer
    tags; exception constructors test runtime identities. *)

(** [texp e] — translate an expression. *)
val texp : Statics.Tast.texp -> Lambda.t

(** [tdecs decs body] — translate a declaration sequence, scoping over
    [body]. *)
val tdecs : Statics.Tast.tdec list -> Lambda.t -> Lambda.t

(** [unit_code decs exports] — the code of a compilation unit: evaluates
    the unit's declarations and returns the record of exported values.
    Its free [Limport]s are the unit's dynamic imports. *)
val unit_code :
  Statics.Tast.tdec list -> (Support.Symbol.t * Statics.Tast.texp) list -> Lambda.t
