lib/irm/group.ml: List String Support Vfs
