lib/irm/group.mli: Vfs
