lib/irm/driver.mli: Link Pickle Sepcomp Vfs
