lib/irm/driver.ml: Depend Digestkit Hashtbl Lang Link List Pickle Sepcomp String Support Vfs
