module Diag = Support.Diag
module Pid = Digestkit.Pid

type policy = Timestamp | Cutoff | Selective

let policy_name = function
  | Timestamp -> "timestamp"
  | Cutoff -> "cutoff"
  | Selective -> "selective"

type stats = {
  st_order : string list;
  st_recompiled : string list;
  st_loaded : string list;
  st_cutoff_hits : string list;
}

type t = {
  fs : Vfs.fs;
  session : Sepcomp.Compile.session;
  units : (string, Pickle.Binfile.t) Hashtbl.t;  (** last build's results *)
}

let create fs = { fs; session = Sepcomp.Compile.new_session (); units = Hashtbl.create 32 }
let session t = t.session

let manager_error fmt = Diag.error Diag.Manager Support.Loc.dummy fmt
let bin_path file = file ^ ".bin"

let read_source t file =
  match t.fs.Vfs.fs_read file with
  | Some content -> content
  | None -> manager_error "source file %s not found" file

(* Try to read the unit's previous bin file; damaged files count as
   absent (forcing recompilation) rather than failing the build. *)
let read_bin t file =
  match t.fs.Vfs.fs_read (bin_path file) with
  | None -> None
  | Some bytes -> (
    match Pickle.Binfile.read (Sepcomp.Compile.context t.session) bytes with
    | unit_ -> Some unit_
    | exception Pickle.Buf.Corrupt _ -> None)

let build t ~policy ~sources =
  let parsed =
    List.map
      (fun file ->
        (file, Lang.Parser.parse_unit ~file (read_source t file)))
      sources
  in
  let graph = Depend.Depgraph.build parsed in
  let order = Depend.Depgraph.topological graph in
  Hashtbl.reset t.units;
  let recompiled = ref [] in
  let loaded = ref [] in
  let cutoff_hits = ref [] in
  let was_recompiled file = List.exists (String.equal file) !recompiled in
  List.iter
    (fun file ->
      let deps = (Depend.Depgraph.node graph file).Depend.Depgraph.n_deps in
      let imports =
        List.map
          (fun dep ->
            match Hashtbl.find_opt t.units dep with
            | Some unit_ -> unit_
            | None -> manager_error "dependency %s of %s was not built" dep file)
          deps
      in
      let src_mtime =
        match t.fs.Vfs.fs_mtime file with
        | Some time -> time
        | None -> manager_error "source file %s not found" file
      in
      let previous = read_bin t file in
      let source_newer =
        match t.fs.Vfs.fs_mtime (bin_path file) with
        | Some bin_time -> src_mtime > bin_time
        | None -> true
      in
      let stale =
        match (previous, source_newer) with
        | None, _ | _, true -> true
        | Some prev, false -> (
          match policy with
          | Timestamp ->
            (* classical make: any recompiled dependency cascades *)
            List.exists was_recompiled deps
          | Cutoff ->
            (* recompile only if some import's *interface* changed *)
            let recorded = prev.Pickle.Binfile.uf_import_statics in
            List.length recorded <> List.length deps
            || not
                 (List.for_all
                    (fun dep ->
                      match
                        ( List.assoc_opt dep recorded,
                          Hashtbl.find_opt t.units dep )
                      with
                      | Some old_pid, Some current ->
                        Pid.equal old_pid current.Pickle.Binfile.uf_static_pid
                      | _ -> false)
                    deps)
          | Selective ->
            (* recompile only if a *referenced module* changed: compare
               the recorded per-name pids against the providers' current
               per-name pids *)
            let current_name_pid modname =
              List.fold_left
                (fun acc dep ->
                  match acc with
                  | Some _ -> acc
                  | None -> (
                    match Hashtbl.find_opt t.units dep with
                    | Some current ->
                      List.assoc_opt modname
                        current.Pickle.Binfile.uf_name_statics
                    | None -> None))
                None deps
            in
            (* the dependency *set* changing still forces a recompile *)
            List.length prev.Pickle.Binfile.uf_import_statics
              <> List.length deps
            || not
                 (List.for_all
                    (fun (modname, old_pid) ->
                      match current_name_pid modname with
                      | Some now -> Pid.equal old_pid now
                      | None -> false)
                    prev.Pickle.Binfile.uf_import_name_statics))
      in
      if stale then begin
        let unit_ =
          Sepcomp.Compile.compile t.session ~name:file
            ~source:(read_source t file) ~imports
        in
        t.fs.Vfs.fs_write (bin_path file)
          (Sepcomp.Compile.save t.session unit_);
        Hashtbl.replace t.units file unit_;
        recompiled := file :: !recompiled;
        (match previous with
        | Some prev
          when Pid.equal prev.Pickle.Binfile.uf_static_pid
                 unit_.Pickle.Binfile.uf_static_pid ->
          cutoff_hits := file :: !cutoff_hits
        | _ -> ())
      end
      else begin
        match previous with
        | Some prev ->
          Hashtbl.replace t.units file prev;
          loaded := file :: !loaded
        | None -> assert false
      end)
    order;
  {
    st_order = order;
    st_recompiled = List.rev !recompiled;
    st_loaded = List.rev !loaded;
    st_cutoff_hits = List.rev !cutoff_hits;
  }

let unit_of t file =
  match Hashtbl.find_opt t.units file with
  | Some unit_ -> unit_
  | None -> manager_error "unit %s has not been built" file

let run ?output t ~sources =
  (* execute in the order of the last build *)
  let parsed =
    List.map
      (fun file -> (file, Lang.Parser.parse_unit ~file (read_source t file)))
      sources
  in
  let graph = Depend.Depgraph.build parsed in
  let order = Depend.Depgraph.topological graph in
  List.fold_left
    (fun dynenv file ->
      Sepcomp.Compile.execute ?output (unit_of t file) dynenv)
    Link.Linker.empty order
