let parse content =
  String.split_on_char '\n' content
  |> List.filter_map (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if line = "" then None else Some line)

let load fs path =
  match fs.Vfs.fs_read path with
  | Some content -> parse content
  | None ->
    Support.Diag.error Support.Diag.Manager Support.Loc.dummy
      "group file %s not found" path
