(** Group description files (section 8): "a simple 'makefile' … contains
    only an unordered list of file names" — dependencies and order are
    computed by the manager, not written by the user. *)

(** [parse content] — one source path per line; [#] starts a comment;
    blank lines ignored. *)
val parse : string -> string list

(** [load fs path] — read and parse a group file.  Raises
    {!Support.Diag.Error} (phase [Manager]) if absent. *)
val load : Vfs.fs -> string -> string list
