type t = string (* exactly 16 bytes *)

let compare = String.compare
let equal = String.equal
let hash = Hashtbl.hash

let of_digest d =
  if String.length d <> 16 then invalid_arg "Pid.of_digest: want 16 bytes";
  d

let intrinsic data = Md5.digest_string data

let run_seed =
  (* One seed per process: wall clock + pid-ish entropy, as the paper's
     provisional stamps use "(time, place)".  Determinism across runs is
     not wanted for provisional pids; intrinsic pids provide it. *)
  Printf.sprintf "%f-%d" (Unix_time.now ()) (Hashtbl.hash (ref ()))

let fresh_counter = ref 0

let fresh () =
  incr fresh_counter;
  Md5.digest_string (Printf.sprintf "fresh-%s-%d" run_seed !fresh_counter)

let to_bytes p = p
let of_bytes = of_digest
let to_hex = Md5.hex
let short p = String.sub (to_hex p) 0 8
let pp ppf p = Format.pp_print_string ppf (to_hex p)

let truncated_bits p b =
  if b < 1 || b > 30 then invalid_arg "Pid.truncated_bits";
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v lsl 8) lor Char.code p.[i]
  done;
  !v land ((1 lsl b) - 1)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
