(** CRC-64 (ECMA-182 polynomial), table-driven.

    The paper describes its intrinsic pids as "a good hash function (a CRC
    of 128 bits)".  We provide a CRC-64 both as a building block (two
    independent CRC streams give a cheap 128-bit checksum used in the
    ablation benches) and as the integrity check on pickled bin files. *)

type t = int64

val init : t

(** [update crc bytes off len] extends [crc] over a slice. *)
val update : t -> bytes -> int -> int -> t

val update_string : t -> string -> t

(** [finish crc] is the final CRC value. *)
val finish : t -> t

(** [of_string s] is the CRC-64 of the whole string. *)
val of_string : string -> t

val to_hex : t -> string
