(** Wall-clock access without depending on the [unix] library.

    Only used to seed provisional pids; nothing in the compiler's
    deterministic paths reads the clock. *)

val now : unit -> float
