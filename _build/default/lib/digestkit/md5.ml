(* RFC 1321, operating on 32-bit words carried in OCaml ints (we rely on
   63-bit native ints; every word operation re-masks to 32 bits). *)

let mask = 0xFFFFFFFF
let ( &&& ) a b = a land b
let ( ||| ) a b = a lor b
let ( ^^^ ) a b = a lxor b
let lnot32 a = lnot a &&& mask
let add32 a b = (a + b) &&& mask
let rotl32 x n = ((x lsl n) ||| (x lsr (32 - n))) &&& mask

type ctx = {
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
  mutable len : int;  (* total bytes absorbed *)
  block : bytes;  (* 64-byte staging buffer *)
  mutable fill : int;  (* valid bytes in [block] *)
}

let init () =
  {
    a = 0x67452301;
    b = 0xefcdab89;
    c = 0x98badcfe;
    d = 0x10325476;
    len = 0;
    block = Bytes.create 64;
    fill = 0;
  }

(* Per-round shift amounts and sine-table constants, in round order. *)
let s =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
    5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
    4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
    6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21;
  |]

let k =
  [|
    0xd76aa478; 0xe8c7b756; 0x242070db; 0xc1bdceee; 0xf57c0faf; 0x4787c62a;
    0xa8304613; 0xfd469501; 0x698098d8; 0x8b44f7af; 0xffff5bb1; 0x895cd7be;
    0x6b901122; 0xfd987193; 0xa679438e; 0x49b40821; 0xf61e2562; 0xc040b340;
    0x265e5a51; 0xe9b6c7aa; 0xd62f105d; 0x02441453; 0xd8a1e681; 0xe7d3fbc8;
    0x21e1cde6; 0xc33707d6; 0xf4d50d87; 0x455a14ed; 0xa9e3e905; 0xfcefa3f8;
    0x676f02d9; 0x8d2a4c8a; 0xfffa3942; 0x8771f681; 0x6d9d6122; 0xfde5380c;
    0xa4beea44; 0x4bdecfa9; 0xf6bb4b60; 0xbebfbc70; 0x289b7ec6; 0xeaa127fa;
    0xd4ef3085; 0x04881d05; 0xd9d4d039; 0xe6db99e5; 0x1fa27cf8; 0xc4ac5665;
    0xf4292244; 0x432aff97; 0xab9423a7; 0xfc93a039; 0x655b59c3; 0x8f0ccc92;
    0xffeff47d; 0x85845dd1; 0x6fa87e4f; 0xfe2ce6e0; 0xa3014314; 0x4e0811a1;
    0xf7537e82; 0xbd3af235; 0x2ad7d2bb; 0xeb86d391;
  |]

let word block i =
  let b j = Char.code (Bytes.get block ((i * 4) + j)) in
  b 0 ||| (b 1 lsl 8) ||| (b 2 lsl 16) ||| (b 3 lsl 24)

let compress ctx block =
  let a0 = ctx.a and b0 = ctx.b and c0 = ctx.c and d0 = ctx.d in
  let a = ref a0 and b = ref b0 and c = ref c0 and d = ref d0 in
  for i = 0 to 63 do
    let f, g =
      if i < 16 then (!b &&& !c ||| (lnot32 !b &&& !d), i)
      else if i < 32 then (!d &&& !b ||| (lnot32 !d &&& !c), ((5 * i) + 1) mod 16)
      else if i < 48 then (!b ^^^ !c ^^^ !d, ((3 * i) + 5) mod 16)
      else (!c ^^^ (!b ||| lnot32 !d), 7 * i mod 16)
    in
    let tmp = !d in
    d := !c;
    c := !b;
    b :=
      add32 !b
        (rotl32 (add32 (add32 (add32 !a f) k.(i)) (word block g)) s.(i));
    a := tmp
  done;
  ctx.a <- add32 a0 !a;
  ctx.b <- add32 b0 !b;
  ctx.c <- add32 c0 !c;
  ctx.d <- add32 d0 !d

let feed ctx src off len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Md5.feed";
  ctx.len <- ctx.len + len;
  let pos = ref off and remaining = ref len in
  (* Top up a partially filled staging block first. *)
  if ctx.fill > 0 then begin
    let take = min !remaining (64 - ctx.fill) in
    Bytes.blit src !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.fill = 64 then begin
      compress ctx ctx.block;
      ctx.fill <- 0
    end
  end;
  while !remaining >= 64 do
    Bytes.blit src !pos ctx.block 0 64;
    compress ctx ctx.block;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit src !pos ctx.block ctx.fill !remaining;
    ctx.fill <- ctx.fill + !remaining
  end

let feed_string ctx s = feed ctx (Bytes.unsafe_of_string s) 0 (String.length s)

let finish ctx =
  let bit_len = ctx.len * 8 in
  (* Padding: 0x80, zeros to 56 mod 64, then the 64-bit little-endian
     bit length. *)
  let pad_len =
    let r = ctx.len mod 64 in
    if r < 56 then 56 - r else 120 - r
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail (pad_len + i)
      (Char.chr ((bit_len lsr (8 * i)) land 0xFF))
  done;
  feed ctx tail 0 (Bytes.length tail);
  let out = Bytes.create 16 in
  let put i w =
    for j = 0 to 3 do
      Bytes.set out ((i * 4) + j) (Char.chr ((w lsr (8 * j)) land 0xFF))
    done
  in
  put 0 ctx.a;
  put 1 ctx.b;
  put 2 ctx.c;
  put 3 ctx.d;
  Bytes.unsafe_to_string out

let digest_string str =
  let ctx = init () in
  feed_string ctx str;
  finish ctx

let hex digest =
  let buf = Buffer.create (String.length digest * 2) in
  String.iter (fun ch -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code ch))) digest;
  Buffer.contents buf
