(** MD5 message digest (RFC 1321), implemented from scratch.

    The paper hashes exported static environments with a 128-bit CRC; we
    use MD5 as our 128-bit hash (same width, better mixing).  The
    implementation is self-contained so the bin-file format does not
    depend on any runtime library's digest function. *)

type ctx

(** A fresh hashing context. *)
val init : unit -> ctx

(** [feed ctx bytes off len] absorbs a slice of [bytes]. *)
val feed : ctx -> bytes -> int -> int -> unit

val feed_string : ctx -> string -> unit

(** [finish ctx] returns the 16-byte digest.  The context must not be
    reused afterwards. *)
val finish : ctx -> string

(** [digest_string s] is the 16-byte MD5 of [s]. *)
val digest_string : string -> string

(** [hex d] renders a digest in lowercase hexadecimal. *)
val hex : string -> string
