(** Persistent identifiers (pids).

    A pid is the paper's 128-bit identifier naming an exported or imported
    entity across compilation units.  Pids come in two flavours, exactly
    as section 5 describes:

    - {e intrinsic} pids, the hash of a canonical serialization of the
      entity's static description (so a pid is independent of when and
      where the entity was compiled); and
    - {e stamp} pids, fresh per-process identifiers used provisionally
      during a single compilation before the intrinsic hash is known.

    Both are represented uniformly as 16 opaque bytes. *)

type t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [of_digest d] wraps a 16-byte digest.  Raises [Invalid_argument] if
    [d] is not exactly 16 bytes. *)
val of_digest : string -> t

(** [intrinsic data] hashes [data] with MD5 to produce an intrinsic pid. *)
val intrinsic : string -> t

(** [fresh ()] makes a provisional pid unique within this process (a
    serial number mixed with a per-run seed, then hashed, mimicking the
    paper's "timestamp augmented with host identifiers"). *)
val fresh : unit -> t

(** 16-byte raw form, suitable for pickling. *)
val to_bytes : t -> string

val of_bytes : string -> t

(** Lowercase hex, for bin-file listings and debugging. *)
val to_hex : t -> string

(** [short p] is the first 8 hex digits, for compact logs. *)
val short : t -> string

val pp : Format.formatter -> t -> unit

(** [truncated_bits p b] is the low [b] bits of the pid as an integer,
    [b <= 30]; used by the collision-probability bench (E4) to emulate
    narrower pids. *)
val truncated_bits : t -> int -> int

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
