lib/digestkit/unix_time.ml: Hashtbl Sys
