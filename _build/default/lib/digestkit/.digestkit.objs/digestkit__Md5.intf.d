lib/digestkit/md5.mli:
