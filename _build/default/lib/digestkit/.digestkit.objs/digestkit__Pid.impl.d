lib/digestkit/pid.ml: Char Format Hashtbl Map Md5 Printf Set String Unix_time
