lib/digestkit/crc64.ml: Array Bytes Char Int64 Printf String
