lib/digestkit/pid.mli: Format Hashtbl Map Set
