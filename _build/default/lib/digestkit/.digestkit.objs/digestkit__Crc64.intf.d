lib/digestkit/crc64.mli:
