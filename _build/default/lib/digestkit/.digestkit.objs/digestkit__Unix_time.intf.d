lib/digestkit/unix_time.mli:
