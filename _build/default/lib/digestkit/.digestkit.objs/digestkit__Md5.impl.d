lib/digestkit/md5.ml: Array Buffer Bytes Char Printf String
