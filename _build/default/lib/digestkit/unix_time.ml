let now () = Sys.time () +. float_of_int (Hashtbl.hash (Sys.opaque_identity (ref 0)) land 0xFFFF)
