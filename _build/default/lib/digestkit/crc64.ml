type t = int64

(* ECMA-182 polynomial, reflected form. *)
let poly = 0xC96C5795D7870F42L

let table =
  let tbl = Array.make 256 0L in
  for n = 0 to 255 do
    let crc = ref (Int64.of_int n) in
    for _ = 0 to 7 do
      if Int64.logand !crc 1L = 1L then
        crc := Int64.logxor (Int64.shift_right_logical !crc 1) poly
      else crc := Int64.shift_right_logical !crc 1
    done;
    tbl.(n) <- !crc
  done;
  tbl

let init = Int64.lognot 0L

let update crc bytes off len =
  if off < 0 || len < 0 || off + len > Bytes.length bytes then
    invalid_arg "Crc64.update";
  let crc = ref crc in
  for i = off to off + len - 1 do
    let idx =
      Int64.to_int (Int64.logand !crc 0xFFL) lxor Char.code (Bytes.get bytes i)
    in
    crc := Int64.logxor (Int64.shift_right_logical !crc 8) table.(idx)
  done;
  !crc

let update_string crc s =
  update crc (Bytes.unsafe_of_string s) 0 (String.length s)

let finish crc = Int64.lognot crc
let of_string s = finish (update_string init s)
let to_hex crc = Printf.sprintf "%016Lx" crc
