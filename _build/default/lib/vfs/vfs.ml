type fs = {
  fs_read : string -> string option;
  fs_write : string -> string -> unit;
  fs_mtime : string -> int option;
  fs_remove : string -> unit;
  fs_list : unit -> string list;
}

let memory () =
  let files : (string, string * int) Hashtbl.t = Hashtbl.create 64 in
  let clock = ref 0 in
  {
    fs_read = (fun path -> Option.map fst (Hashtbl.find_opt files path));
    fs_write =
      (fun path content ->
        incr clock;
        Hashtbl.replace files path (content, !clock));
    fs_mtime = (fun path -> Option.map snd (Hashtbl.find_opt files path));
    fs_remove = (fun path -> Hashtbl.remove files path);
    fs_list =
      (fun () ->
        Hashtbl.fold (fun path _ acc -> path :: acc) files []
        |> List.sort String.compare);
  }

let touch fs path =
  match fs.fs_read path with
  | Some content -> fs.fs_write path content
  | None -> ()

let real ~dir =
  let join path = Filename.concat dir path in
  let read path =
    let full = join path in
    if Sys.file_exists full && not (Sys.is_directory full) then begin
      let ic = open_in_bin full in
      let n = in_channel_length ic in
      let content = really_input_string ic n in
      close_in ic;
      Some content
    end
    else None
  in
  let write path content =
    let full = join path in
    let parent = Filename.dirname full in
    let rec ensure dir =
      if not (Sys.file_exists dir) then begin
        ensure (Filename.dirname dir);
        Sys.mkdir dir 0o755
      end
    in
    ensure parent;
    let oc = open_out_bin full in
    output_string oc content;
    close_out oc
  in
  let mtime path =
    let full = join path in
    if Sys.file_exists full then
      Some (int_of_float (Unix.stat full).Unix.st_mtime)
    else None
  in
  let remove path =
    let full = join path in
    if Sys.file_exists full then Sys.remove full
  in
  let list () =
    let rec walk prefix acc =
      let dirpath = if prefix = "" then dir else Filename.concat dir prefix in
      Array.fold_left
        (fun acc entry ->
          let rel = if prefix = "" then entry else Filename.concat prefix entry in
          let full = Filename.concat dir rel in
          if Sys.is_directory full then walk rel acc else rel :: acc)
        acc (Sys.readdir dirpath)
    in
    if Sys.file_exists dir then List.sort String.compare (walk "" []) else []
  in
  { fs_read = read; fs_write = write; fs_mtime = mtime; fs_remove = remove; fs_list = list }
