(** File-system abstraction for the compilation manager.

    The IRM only needs read/write/mtime, so it works over an abstract
    {!fs} record.  Two implementations:

    - {!memory}: an in-memory store with a *logical clock* (every write
      bumps it), giving the recompilation benches deterministic,
      race-free timestamps;
    - {!real}: the host file system (used by the [irm] command-line
      tool). *)

type fs = {
  fs_read : string -> string option;
  fs_write : string -> string -> unit;
  fs_mtime : string -> int option;  (** [None] if absent *)
  fs_remove : string -> unit;
  fs_list : unit -> string list;  (** all known paths (memory only) *)
}

(** A fresh in-memory file system. *)
val memory : unit -> fs

(** [touch fs path] rewrites a file with its current content, bumping
    its timestamp — the classic way to provoke a timestamp-based
    rebuild. *)
val touch : fs -> string -> unit

(** The host file system rooted at [dir] (paths are joined to it).
    [fs_mtime] is wall-clock seconds; [fs_list] enumerates [dir]
    recursively. *)
val real : dir:string -> fs
