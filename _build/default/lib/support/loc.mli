(** Source locations.

    A location is a half-open character span within a named source file,
    with line/column information for diagnostics. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 0-based column *)
  offset : int;  (** 0-based byte offset from start of file *)
}

type t = { file : string; start_pos : pos; end_pos : pos }

(** A location usable when no better information exists (generated code,
    initial basis bindings). *)
val dummy : t

val start_of_file : string -> pos

(** [make file a b] spans from [a] (inclusive) to [b] (exclusive). *)
val make : string -> pos -> pos -> t

(** [merge a b] covers both [a] and [b]; they must be in the same file. *)
val merge : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
