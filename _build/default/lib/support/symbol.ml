type t = { id : int; name : string }

let table : (string, t) Hashtbl.t = Hashtbl.create 1024
let next = ref 0

let intern name =
  match Hashtbl.find_opt table name with
  | Some sym -> sym
  | None ->
    let sym = { id = !next; name } in
    incr next;
    Hashtbl.add table name sym;
    sym

let name sym = sym.name
let id sym = sym.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash sym = sym.id
let pp ppf sym = Format.pp_print_string ppf sym.name

let fresh_counter = ref 0

let fresh base =
  incr fresh_counter;
  (* '%' cannot appear in a source identifier, so this never collides. *)
  intern (Printf.sprintf "%s%%%d" base !fresh_counter)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
