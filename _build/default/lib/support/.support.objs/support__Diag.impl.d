lib/support/diag.ml: Format Loc Result
