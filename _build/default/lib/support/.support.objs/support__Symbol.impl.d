lib/support/symbol.ml: Format Hashtbl Int Map Printf Set
