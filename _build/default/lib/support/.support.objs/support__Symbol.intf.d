lib/support/symbol.mli: Format Hashtbl Map Set
