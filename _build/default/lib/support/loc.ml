type pos = { line : int; col : int; offset : int }
type t = { file : string; start_pos : pos; end_pos : pos }

let start_of_file _file = { line = 1; col = 0; offset = 0 }

let dummy =
  let p = { line = 0; col = 0; offset = 0 } in
  { file = "<generated>"; start_pos = p; end_pos = p }

let make file start_pos end_pos = { file; start_pos; end_pos }

let merge a b =
  if a == dummy then b
  else if b == dummy then a
  else
    let start_pos =
      if a.start_pos.offset <= b.start_pos.offset then a.start_pos
      else b.start_pos
    in
    let end_pos =
      if a.end_pos.offset >= b.end_pos.offset then a.end_pos else b.end_pos
    in
    { file = a.file; start_pos; end_pos }

let pp ppf loc =
  if loc == dummy then Format.pp_print_string ppf "<generated>"
  else if loc.start_pos.line = loc.end_pos.line then
    Format.fprintf ppf "%s:%d.%d-%d" loc.file loc.start_pos.line
      loc.start_pos.col loc.end_pos.col
  else
    Format.fprintf ppf "%s:%d.%d-%d.%d" loc.file loc.start_pos.line
      loc.start_pos.col loc.end_pos.line loc.end_pos.col

let to_string loc = Format.asprintf "%a" pp loc
