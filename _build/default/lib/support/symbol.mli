(** Interned identifiers.

    All identifiers appearing in MiniSML source code are interned into
    symbols so that comparison is O(1) and symbol tables can be keyed by a
    dense integer.  Interning is global and append-only; symbols are never
    garbage collected (the compiler runs batch-style, as in SML/NJ). *)

type t

(** [intern s] returns the unique symbol for the string [s]. *)
val intern : string -> t

(** [name sym] is the string [sym] was interned from. *)
val name : t -> string

(** [id sym] is a dense non-negative integer unique to [sym]. *)
val id : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** [fresh base] interns a symbol guaranteed not to collide with any
    source-written identifier, by embedding a serial number.  Used for
    generated bindings in the elaborator and lambda translation. *)
val fresh : string -> t

(** Finite maps and sets keyed by symbols. *)
module Map : Map.S with type key = t
module Set : Set.S with type elt = t

(** Mutable hash tables keyed by symbols. *)
module Table : Hashtbl.S with type key = t
